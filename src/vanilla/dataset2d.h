#ifndef CLUSTAGG_VANILLA_DATASET2D_H_
#define CLUSTAGG_VANILLA_DATASET2D_H_

#include <cstddef>
#include <vector>

#include "common/symmetric_matrix.h"

namespace clustagg {

/// A point in the plane. The paper's robustness and scalability
/// experiments (Figures 3-5) all run on two-dimensional point sets.
struct Point2D {
  double x = 0.0;
  double y = 0.0;
};

/// Squared Euclidean distance.
double SquaredDistance(const Point2D& a, const Point2D& b);

/// Euclidean distance.
double EuclideanDistance(const Point2D& a, const Point2D& b);

/// A 2D point set with optional ground-truth labels (label -1 marks
/// background noise / outliers in the synthetic generators).
struct Dataset2D {
  std::vector<Point2D> points;
  /// Ground truth, same length as points when present; empty otherwise.
  std::vector<int> ground_truth;

  std::size_t size() const { return points.size(); }
};

/// Full pairwise Euclidean distance matrix; input for the hierarchical
/// linkage algorithms. O(n^2) memory — for the vanilla clusterings of the
/// robustness experiments (n ~ 1000).
SymmetricMatrix<double> PairwiseEuclidean(const std::vector<Point2D>& points,
                                          bool squared = false);

}  // namespace clustagg

#endif  // CLUSTAGG_VANILLA_DATASET2D_H_
