#ifndef CLUSTAGG_VANILLA_HIERARCHICAL_H_
#define CLUSTAGG_VANILLA_HIERARCHICAL_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "core/clustering.h"
#include "core/hierarchy.h"
#include "vanilla/dataset2d.h"

namespace clustagg {

/// Options for hierarchical clustering of 2D points.
struct HierarchicalOptions {
  Linkage linkage = Linkage::kAverage;
  /// Number of clusters to cut the dendrogram at.
  std::size_t k = 2;
};

/// Hierarchical agglomerative clustering of a point set, cut at k
/// clusters. These are the vanilla algorithms the paper aggregates in
/// the robustness experiment (Figure 3): single / complete / average
/// linkage and Ward's method. Ward distances are handled internally
/// (squared Euclidean feed). O(n^2) time and memory.
Result<Clustering> HierarchicalCluster(const std::vector<Point2D>& points,
                                       const HierarchicalOptions& options);

/// Builds the full dendrogram for a point set (exposed for callers that
/// want several cuts of the same tree).
Result<Dendrogram> BuildDendrogram(const std::vector<Point2D>& points,
                                   Linkage linkage);

}  // namespace clustagg

#endif  // CLUSTAGG_VANILLA_HIERARCHICAL_H_
