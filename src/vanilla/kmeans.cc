#include "vanilla/kmeans.h"

#include <limits>
#include <string>

#include "common/check.h"
#include "common/rng.h"

namespace clustagg {

namespace {

/// k-means++ seeding: first center uniform, then each next center drawn
/// with probability proportional to the squared distance to the nearest
/// chosen center.
std::vector<Point2D> SeedPlusPlus(const std::vector<Point2D>& points,
                                  std::size_t k, Rng* rng) {
  const std::size_t n = points.size();
  std::vector<Point2D> centers;
  centers.reserve(k);
  centers.push_back(points[rng->NextBounded(n)]);
  std::vector<double> d2(n);
  while (centers.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (const Point2D& c : centers) {
        best = std::min(best, SquaredDistance(points[i], c));
      }
      d2[i] = best;
      total += best;
    }
    if (total <= 0.0) {
      // All points coincide with existing centers; fall back to uniform.
      centers.push_back(points[rng->NextBounded(n)]);
      continue;
    }
    double target = rng->NextDouble() * total;
    std::size_t chosen = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      target -= d2[i];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
    centers.push_back(points[chosen]);
  }
  return centers;
}

KMeansResult LloydOnce(const std::vector<Point2D>& points,
                       const KMeansOptions& options, Rng* rng) {
  const std::size_t n = points.size();
  const std::size_t k = options.k;
  std::vector<Point2D> centers = SeedPlusPlus(points, k, rng);
  std::vector<Clustering::Label> labels(n, 0);

  KMeansResult result;
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Assignment step.
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t best = 0;
      double best_d2 = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < k; ++c) {
        const double d2 = SquaredDistance(points[i], centers[c]);
        if (d2 < best_d2) {
          best_d2 = d2;
          best = c;
        }
      }
      if (labels[i] != static_cast<Clustering::Label>(best)) {
        labels[i] = static_cast<Clustering::Label>(best);
        changed = true;
      }
    }
    result.iterations = iter + 1;
    if (!changed && iter > 0) break;

    // Update step.
    std::vector<Point2D> sums(k);
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto c = static_cast<std::size_t>(labels[i]);
      sums[c].x += points[i].x;
      sums[c].y += points[i].y;
      ++counts[c];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Reseed an empty cluster to the point furthest from its current
        // center assignment.
        std::size_t far = 0;
        double far_d2 = -1.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double d2 = SquaredDistance(
              points[i], centers[static_cast<std::size_t>(labels[i])]);
          if (d2 > far_d2) {
            far_d2 = d2;
            far = i;
          }
        }
        centers[c] = points[far];
      } else {
        centers[c] = {sums[c].x / static_cast<double>(counts[c]),
                      sums[c].y / static_cast<double>(counts[c])};
      }
    }
  }

  double inertia = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    inertia += SquaredDistance(points[i],
                               centers[static_cast<std::size_t>(labels[i])]);
  }
  result.clustering = Clustering(std::move(labels));
  result.centroids = std::move(centers);
  result.inertia = inertia;
  return result;
}

}  // namespace

Result<KMeansResult> KMeans(const std::vector<Point2D>& points,
                            const KMeansOptions& options) {
  const std::size_t n = points.size();
  if (options.k < 1 || options.k > n) {
    return Status::InvalidArgument("k=" + std::to_string(options.k) +
                                   " outside [1, n=" + std::to_string(n) +
                                   "]");
  }
  if (options.restarts < 1) {
    return Status::InvalidArgument("restarts must be >= 1");
  }
  Rng rng(options.seed);
  KMeansResult best;
  bool first = true;
  for (std::size_t r = 0; r < options.restarts; ++r) {
    KMeansResult run = LloydOnce(points, options, &rng);
    if (first || run.inertia < best.inertia) {
      best = std::move(run);
      first = false;
    }
  }
  CLUSTAGG_CHECK(!first);
  return best;
}

}  // namespace clustagg
