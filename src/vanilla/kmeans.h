#ifndef CLUSTAGG_VANILLA_KMEANS_H_
#define CLUSTAGG_VANILLA_KMEANS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/clustering.h"
#include "vanilla/dataset2d.h"

namespace clustagg {

/// Options for Lloyd's k-means.
struct KMeansOptions {
  /// Number of clusters; must be in [1, n].
  std::size_t k = 2;
  /// Maximum Lloyd iterations.
  std::size_t max_iterations = 100;
  /// Seed for the k-means++ initialization.
  std::uint64_t seed = 1;
  /// Number of independent restarts; the run with the lowest within-
  /// cluster sum of squares wins.
  std::size_t restarts = 1;
};

/// Result of a k-means run.
struct KMeansResult {
  Clustering clustering;
  std::vector<Point2D> centroids;
  /// Within-cluster sum of squared distances (the k-means objective).
  double inertia = 0.0;
  std::size_t iterations = 0;
};

/// Lloyd's algorithm with k-means++ seeding. Empty clusters are reseeded
/// to the point furthest from its centroid. This is the substrate that
/// produces the input clusterings of the paper's Figures 4 and 5
/// ("Matlab's k-means" in the original).
Result<KMeansResult> KMeans(const std::vector<Point2D>& points,
                            const KMeansOptions& options);

}  // namespace clustagg

#endif  // CLUSTAGG_VANILLA_KMEANS_H_
