#include "core/disagreement.h"

#include <unordered_map>
#include <vector>

namespace clustagg {

namespace {

Status CheckComparable(const Clustering& a, const Clustering& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument(
        "clusterings cover different numbers of objects (" +
        std::to_string(a.size()) + " vs " + std::to_string(b.size()) + ")");
  }
  if (a.HasMissing() || b.HasMissing()) {
    return Status::InvalidArgument(
        "disagreement distance requires complete clusterings; use "
        "ClusteringSet with a missing-value policy instead");
  }
  return Status::OK();
}

std::uint64_t PairsFromSizes(const std::vector<std::uint64_t>& sizes) {
  std::uint64_t pairs = 0;
  for (std::uint64_t s : sizes) pairs += s * (s - 1) / 2;
  return pairs;
}

}  // namespace

Result<std::uint64_t> DisagreementDistanceNaive(const Clustering& a,
                                                const Clustering& b) {
  if (Status s = CheckComparable(a, b); !s.ok()) return s;
  const std::size_t n = a.size();
  std::uint64_t disagreements = 0;
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      const bool together_a = a.label(u) == a.label(v);
      const bool together_b = b.label(u) == b.label(v);
      if (together_a != together_b) ++disagreements;
    }
  }
  return disagreements;
}

Result<std::uint64_t> DisagreementDistance(const Clustering& a,
                                           const Clustering& b) {
  if (Status s = CheckComparable(a, b); !s.ok()) return s;
  const Clustering na = a.Normalized();
  const Clustering nb = b.Normalized();
  const std::size_t n = na.size();
  const std::size_t ka = na.NumClusters();
  const std::size_t kb = nb.NumClusters();

  std::vector<std::uint64_t> sizes_a(ka, 0);
  std::vector<std::uint64_t> sizes_b(kb, 0);
  // Contingency counts, indexed cluster-of-a * kb + cluster-of-b. Dense is
  // fine: the aggregation inputs here have small k.
  std::vector<std::uint64_t> joint(ka * kb, 0);
  for (std::size_t v = 0; v < n; ++v) {
    const auto ca = static_cast<std::size_t>(na.label(v));
    const auto cb = static_cast<std::size_t>(nb.label(v));
    ++sizes_a[ca];
    ++sizes_b[cb];
    ++joint[ca * kb + cb];
  }

  std::uint64_t joint_pairs = 0;
  for (std::uint64_t c : joint) joint_pairs += c * (c - 1) / 2;

  return PairsFromSizes(sizes_a) + PairsFromSizes(sizes_b) - 2 * joint_pairs;
}

Result<std::uint64_t> CoClusteredPairs(const Clustering& c) {
  if (c.HasMissing()) {
    return Status::InvalidArgument(
        "CoClusteredPairs requires a complete clustering");
  }
  std::unordered_map<Clustering::Label, std::uint64_t> sizes;
  for (std::size_t v = 0; v < c.size(); ++v) ++sizes[c.label(v)];
  std::uint64_t pairs = 0;
  for (const auto& [label, s] : sizes) pairs += s * (s - 1) / 2;
  return pairs;
}

}  // namespace clustagg
