#ifndef CLUSTAGG_CORE_FAULT_INJECTION_H_
#define CLUSTAGG_CORE_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>

#include "common/check.h"
#include "common/run_context.h"
#include "core/distance_source.h"

namespace clustagg {

/// Test-only DistanceSource decorator that counts queries and fires a
/// deterministic failure schedule keyed by the query count: when the
/// counter crosses `cancel_at_query`, RequestCancel() is invoked on the
/// associated RunContext, so an algorithm is interrupted at exactly the
/// same point in its query stream on every run — independent of wall
/// clock, machine speed, or sanitizer slowdown. A FillRow counts as one
/// query (it is one backend access however many entries it fills).
///
/// The wrapper deliberately hides the inner source's dense matrix:
/// CorrelationInstance and the clusterers devirtualize their hot loops
/// through dense_matrix() when it is available, which would bypass the
/// wrapper and stop the counting. Wrapped instances therefore always
/// exercise the virtual FillRow/distance paths.
class FaultInjectingDistanceSource final : public DistanceSource {
 public:
  /// `cancel_at_query` = 0 disables the trigger (pure counting wrapper).
  /// `run` must not be unlimited when a trigger is set.
  FaultInjectingDistanceSource(std::shared_ptr<const DistanceSource> inner,
                               RunContext run,
                               std::uint64_t cancel_at_query = 0)
      : inner_(std::move(inner)),
        run_(std::move(run)),
        cancel_at_query_(cancel_at_query) {
    CLUSTAGG_CHECK(inner_ != nullptr);
    if (cancel_at_query_ != 0) CLUSTAGG_CHECK(!run_.unlimited());
  }

  std::size_t size() const override { return inner_->size(); }

  double distance(std::size_t u, std::size_t v) const override {
    Charge();
    return inner_->distance(u, v);
  }

  void FillRow(std::size_t u, std::span<double> row) const override {
    Charge();
    inner_->FillRow(u, row);
  }

  /// Keeps the inner backend's name so reports stay truthful about which
  /// representation answered the queries.
  const char* name() const override { return inner_->name(); }

  /// Total queries (distance + FillRow calls) observed so far.
  std::uint64_t queries() const {
    return queries_.load(std::memory_order_relaxed);
  }

 private:
  void Charge() const {
    const std::uint64_t count =
        queries_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (cancel_at_query_ != 0 && count == cancel_at_query_) {
      run_.RequestCancel();
    }
  }

  std::shared_ptr<const DistanceSource> inner_;
  RunContext run_;
  std::uint64_t cancel_at_query_;
  mutable std::atomic<std::uint64_t> queries_{0};
};

}  // namespace clustagg

#endif  // CLUSTAGG_CORE_FAULT_INJECTION_H_
