#include "core/clustering.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "common/check.h"

namespace clustagg {

Clustering::Clustering(std::vector<Label> labels)
    : labels_(std::move(labels)) {}

Result<Clustering> Clustering::FromLabels(std::vector<Label> labels) {
  for (std::size_t v = 0; v < labels.size(); ++v) {
    if (labels[v] < 0 && labels[v] != kMissing) {
      return Status::InvalidArgument("label of object " + std::to_string(v) +
                                     " is negative and not kMissing");
    }
  }
  return Clustering(std::move(labels));
}

Clustering Clustering::AllSingletons(std::size_t n) {
  std::vector<Label> labels(n);
  for (std::size_t v = 0; v < n; ++v) labels[v] = static_cast<Label>(v);
  return Clustering(std::move(labels));
}

Clustering Clustering::SingleCluster(std::size_t n) {
  return Clustering(std::vector<Label>(n, 0));
}

Result<Clustering> Clustering::FromClusters(
    std::size_t n, const std::vector<std::vector<std::size_t>>& clusters) {
  std::vector<Label> labels(n, kMissing);
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    for (std::size_t v : clusters[c]) {
      if (v >= n) {
        return Status::InvalidArgument("cluster member " + std::to_string(v) +
                                       " out of range for n=" +
                                       std::to_string(n));
      }
      if (labels[v] != kMissing) {
        return Status::InvalidArgument("object " + std::to_string(v) +
                                       " appears in more than one cluster");
      }
      labels[v] = static_cast<Label>(c);
    }
  }
  return Clustering(std::move(labels));
}

bool Clustering::HasMissing() const {
  return std::find(labels_.begin(), labels_.end(), kMissing) != labels_.end();
}

std::size_t Clustering::CountMissing() const {
  return static_cast<std::size_t>(
      std::count(labels_.begin(), labels_.end(), kMissing));
}

std::size_t Clustering::NumClusters() const {
  std::vector<Label> seen(labels_);
  seen.erase(std::remove(seen.begin(), seen.end(), kMissing), seen.end());
  std::sort(seen.begin(), seen.end());
  seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
  return seen.size();
}

void Clustering::Normalize() {
  std::unordered_map<Label, Label> remap;
  remap.reserve(64);
  Label next = 0;
  for (auto& label : labels_) {
    if (label == kMissing) continue;
    auto [it, inserted] = remap.try_emplace(label, next);
    if (inserted) ++next;
    label = it->second;
  }
}

Clustering Clustering::Normalized() const {
  Clustering copy = *this;
  copy.Normalize();
  return copy;
}

std::vector<std::vector<std::size_t>> Clustering::Clusters() const {
  const Clustering norm = Normalized();
  std::vector<std::vector<std::size_t>> out(norm.NumClusters());
  for (std::size_t v = 0; v < norm.size(); ++v) {
    if (norm.labels_[v] != kMissing) {
      out[static_cast<std::size_t>(norm.labels_[v])].push_back(v);
    }
  }
  return out;
}

std::vector<std::size_t> Clustering::ClusterSizes() const {
  const Clustering norm = Normalized();
  std::vector<std::size_t> sizes(norm.NumClusters(), 0);
  for (std::size_t v = 0; v < norm.size(); ++v) {
    if (norm.labels_[v] != kMissing) {
      ++sizes[static_cast<std::size_t>(norm.labels_[v])];
    }
  }
  return sizes;
}

Clustering Clustering::Restrict(const std::vector<std::size_t>& subset) const {
  std::vector<Label> labels(subset.size());
  for (std::size_t i = 0; i < subset.size(); ++i) {
    CLUSTAGG_CHECK(subset[i] < labels_.size());
    labels[i] = labels_[subset[i]];
  }
  return Clustering(std::move(labels));
}

Clustering Clustering::WithMissingAsSingletons() const {
  Clustering out = *this;
  Label next = 0;
  for (Label label : labels_) {
    if (label != kMissing && label >= next) next = label + 1;
  }
  for (auto& label : out.labels_) {
    if (label == kMissing) label = next++;
  }
  return out;
}

Status Clustering::Validate() const {
  for (std::size_t v = 0; v < labels_.size(); ++v) {
    if (labels_[v] < 0 && labels_[v] != kMissing) {
      return Status::InvalidArgument("label of object " + std::to_string(v) +
                                     " is negative and not kMissing");
    }
  }
  return Status::OK();
}

bool Clustering::SamePartition(const Clustering& other) const {
  if (size() != other.size()) return false;
  // Two partitions coincide iff the normalized (first-appearance) label
  // vectors are identical, because normalization is a canonical form.
  return Normalized() == other.Normalized();
}

}  // namespace clustagg
