#ifndef CLUSTAGG_CORE_ANNEALING_H_
#define CLUSTAGG_CORE_ANNEALING_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/clusterer.h"

namespace clustagg {

/// Options for the simulated-annealing clusterer.
struct AnnealingOptions {
  /// Proposals per temperature level.
  std::size_t moves_per_temperature = 2000;
  /// Geometric cooling factor per level.
  double cooling = 0.95;
  /// Initial temperature as a multiple of the average |move delta|
  /// observed in a short warm-up walk.
  double initial_temperature_factor = 2.0;
  /// Stop when the acceptance rate at a level falls below this.
  double min_acceptance_rate = 0.002;
  /// Hard cap on temperature levels.
  std::size_t max_levels = 200;
  std::uint64_t seed = 1;
  /// Polish the final state with a greedy local-search descent.
  bool final_descent = true;
};

/// Simulated-annealing correlation clusterer, after Filkov & Skiena
/// (ICTAI 2003), who attack the same median-partition objective with
/// annealing — the paper discusses this line of work in Section 6.
/// Moves are single-object relocations (to an existing cluster or to a
/// fresh singleton) evaluated in O(#clusters) via the same M(v, C)
/// bookkeeping as LOCALSEARCH; worse moves are accepted with the
/// Metropolis probability exp(-delta / T) under a geometric cooling
/// schedule. Slower than LOCALSEARCH but able to hop out of its local
/// optima; compared against it in the ablation bench.
class AnnealingClusterer final : public CorrelationClusterer {
 public:
  explicit AnnealingClusterer(AnnealingOptions options = {})
      : options_(options) {}

  std::string name() const override { return "ANNEALING"; }

  /// Polls `run` every 64 proposals, per temperature level, and per
  /// final-descent pass. The walk's state is a valid partition at every
  /// step, so an interrupt returns it as-is (skipping the remaining
  /// cooling and polish); an interrupt during the up-front M-table build
  /// returns all singletons, the walk's starting point.
  Result<ClustererRun> RunControlled(const CorrelationInstance& instance,
                                     const RunContext& run) const override;

  const AnnealingOptions& options() const { return options_; }

 private:
  AnnealingOptions options_;
};

}  // namespace clustagg

#endif  // CLUSTAGG_CORE_ANNEALING_H_
