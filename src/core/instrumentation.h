#ifndef CLUSTAGG_CORE_INSTRUMENTATION_H_
#define CLUSTAGG_CORE_INSTRUMENTATION_H_

#include <cstdint>
#include <string_view>

#include "common/telemetry.h"

/// Call-site layer of the telemetry system. Library code never touches
/// Telemetry directly; it calls the helpers below with the Telemetry*
/// carried by the current RunContext (null when no sink is attached).
/// When the library is configured with -DCLUSTAGG_TELEMETRY=OFF the
/// CLUSTAGG_TELEMETRY_ENABLED macro is not defined and every helper
/// collapses to an empty inline function (and InstrumentedSpan to an
/// empty object), so instrumented code compiles to exactly what it was
/// before instrumentation — zero overhead, verified by the cli_smoke
/// no-op check. When ON, a null Telemetry* still short-circuits to a
/// single pointer test.

namespace clustagg {

#if defined(CLUSTAGG_TELEMETRY_ENABLED)

inline void TelemetryCount(Telemetry* telemetry, std::string_view name,
                           std::uint64_t delta = 1) {
  if (telemetry != nullptr) telemetry->counter(name)->Add(delta);
}

inline void TelemetrySetGauge(Telemetry* telemetry, std::string_view name,
                              std::int64_t value) {
  if (telemetry != nullptr) telemetry->gauge(name)->Set(value);
}

inline void TelemetryObserve(Telemetry* telemetry, std::string_view name,
                             std::uint64_t value) {
  if (telemetry != nullptr) telemetry->histogram(name)->Observe(value);
}

inline void TelemetryTracePoint(Telemetry* telemetry, std::string_view name,
                                std::uint64_t step, double value,
                                std::uint64_t aux = 0) {
  if (telemetry != nullptr) telemetry->trace(name)->Record(step, value, aux);
}

/// Non-RAII span pair for phases that are not block-structured (early
/// returns between phases): Telemetry::EndSpan closes any still-open
/// children, so a skipped end is healed by the enclosing span's end.
inline std::size_t TelemetryBeginSpan(Telemetry* telemetry,
                                      std::string_view name) {
  return telemetry != nullptr ? telemetry->BeginSpan(name) : 0;
}
inline void TelemetryEndSpan(Telemetry* telemetry, std::size_t id) {
  if (telemetry != nullptr) telemetry->EndSpan(id);
}

/// RAII phase span; no-op on a null telemetry.
class InstrumentedSpan {
 public:
  InstrumentedSpan(Telemetry* telemetry, std::string_view name)
      : telemetry_(telemetry),
        id_(telemetry != nullptr ? telemetry->BeginSpan(name) : 0) {}
  ~InstrumentedSpan() {
    if (telemetry_ != nullptr) telemetry_->EndSpan(id_);
  }
  InstrumentedSpan(const InstrumentedSpan&) = delete;
  InstrumentedSpan& operator=(const InstrumentedSpan&) = delete;

 private:
  Telemetry* telemetry_;
  std::size_t id_;
};

/// Measures the elapsed nanoseconds between construction and
/// destruction and records them into the named latency histogram.
class InstrumentedTimer {
 public:
  InstrumentedTimer(Telemetry* telemetry, std::string_view name)
      : telemetry_(telemetry),
        name_(name),
        start_(telemetry != nullptr ? telemetry->clock().NowNanos() : 0) {}
  ~InstrumentedTimer() {
    if (telemetry_ != nullptr) {
      telemetry_->histogram(name_)->Observe(telemetry_->clock().NowNanos() -
                                            start_);
    }
  }
  InstrumentedTimer(const InstrumentedTimer&) = delete;
  InstrumentedTimer& operator=(const InstrumentedTimer&) = delete;

 private:
  Telemetry* telemetry_;
  std::string_view name_;
  std::uint64_t start_;
};

#else  // !CLUSTAGG_TELEMETRY_ENABLED

inline void TelemetryCount(Telemetry*, std::string_view,
                           std::uint64_t = 1) {}
inline void TelemetrySetGauge(Telemetry*, std::string_view, std::int64_t) {}
inline void TelemetryObserve(Telemetry*, std::string_view, std::uint64_t) {}
inline void TelemetryTracePoint(Telemetry*, std::string_view, std::uint64_t,
                                double, std::uint64_t = 0) {}
inline std::size_t TelemetryBeginSpan(Telemetry*, std::string_view) {
  return 0;
}
inline void TelemetryEndSpan(Telemetry*, std::size_t) {}

class InstrumentedSpan {
 public:
  InstrumentedSpan(Telemetry*, std::string_view) {}
  InstrumentedSpan(const InstrumentedSpan&) = delete;
  InstrumentedSpan& operator=(const InstrumentedSpan&) = delete;
};

class InstrumentedTimer {
 public:
  InstrumentedTimer(Telemetry*, std::string_view) {}
  InstrumentedTimer(const InstrumentedTimer&) = delete;
  InstrumentedTimer& operator=(const InstrumentedTimer&) = delete;
};

#endif  // CLUSTAGG_TELEMETRY_ENABLED

}  // namespace clustagg

#endif  // CLUSTAGG_CORE_INSTRUMENTATION_H_
