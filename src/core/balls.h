#ifndef CLUSTAGG_CORE_BALLS_H_
#define CLUSTAGG_CORE_BALLS_H_

#include <string>

#include "core/clusterer.h"

namespace clustagg {

/// Options for the BALLS correlation clusterer.
struct BallsOptions {
  /// Cluster-formation threshold: a ball S around vertex u becomes a
  /// cluster iff the average distance from u to S is <= alpha. The
  /// theoretical analysis (Theorem 1) uses alpha = 1/4 for the
  /// 3-approximation; the paper reports alpha = 2/5 often works better in
  /// practice (1/4 creates many singletons). Must lie in [0, 1/2].
  double alpha = 0.25;

  /// Process vertices in increasing order of total incident edge weight
  /// (the paper's heuristic). When false, vertices are processed in index
  /// order — kept as an ablation knob.
  bool sort_by_incident_weight = true;
};

/// The BALLS algorithm (Section 4): repeatedly take the first unclustered
/// vertex u in the ordering, gather the "ball" S of unclustered vertices
/// within distance 1/2 of u, and make S + {u} a cluster if the average
/// distance from u to S is at most alpha, else make u a singleton.
/// 3-approximation for triangle-inequality instances at alpha = 1/4
/// (Theorem 1); 2-approximation when the instance stems from m = 3
/// clusterings. O(n^2).
class BallsClusterer final : public CorrelationClusterer {
 public:
  explicit BallsClusterer(BallsOptions options = {}) : options_(options) {}

  std::string name() const override { return "BALLS"; }

  /// Polls `run` once per ball center. When the budget fires mid-pass the
  /// vertices not yet absorbed into a ball become singletons, which is
  /// exactly what BALLS itself does to vertices that fail the alpha test —
  /// the result is always a valid partition. An interrupted incident-
  /// weight sort degrades to index order.
  Result<ClustererRun> RunControlled(const CorrelationInstance& instance,
                                     const RunContext& run) const override;

  const BallsOptions& options() const { return options_; }

 private:
  BallsOptions options_;
};

}  // namespace clustagg

#endif  // CLUSTAGG_CORE_BALLS_H_
