#ifndef CLUSTAGG_CORE_CLUSTERING_H_
#define CLUSTAGG_CORE_CLUSTERING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"

namespace clustagg {

/// A clustering (partition) of n objects identified by indices 0..n-1,
/// stored as a label vector: `label(v)` is the id of the cluster object v
/// belongs to. Labels need not be contiguous; `Normalize()` relabels them
/// to 0..k-1 in order of first appearance.
///
/// A label of `kMissing` means the clustering expresses no opinion about
/// the object. This arises when a clustering is induced by a categorical
/// attribute with missing values (Section 2 of the paper); the
/// missing-value policies in `ClusteringSet` define how such pairs
/// contribute to disagreement counts. Aggregation *outputs* are always
/// complete (no missing labels).
class Clustering {
 public:
  using Label = std::int32_t;

  /// Sentinel label for objects the clustering has no opinion about.
  static constexpr Label kMissing = -1;

  /// Empty clustering of zero objects.
  Clustering() = default;

  /// Takes ownership of a label vector. Labels must be >= 0 or kMissing;
  /// use Validate() (or FromLabels) to verify untrusted input.
  explicit Clustering(std::vector<Label> labels);

  /// Validating factory for untrusted label vectors.
  static Result<Clustering> FromLabels(std::vector<Label> labels);

  /// n singleton clusters: object v gets label v.
  static Clustering AllSingletons(std::size_t n);

  /// One cluster containing every object.
  static Clustering SingleCluster(std::size_t n);

  /// Builds a clustering of n objects from explicit member lists. Fails if
  /// the lists are not a partition of a subset of 0..n-1; objects in no
  /// list get kMissing.
  static Result<Clustering> FromClusters(
      std::size_t n, const std::vector<std::vector<std::size_t>>& clusters);

  /// Number of objects.
  std::size_t size() const { return labels_.size(); }

  Label label(std::size_t v) const { return labels_[v]; }

  bool has_label(std::size_t v) const { return labels_[v] != kMissing; }

  /// True if any object has a missing label. O(n).
  bool HasMissing() const;

  /// Number of missing labels. O(n).
  std::size_t CountMissing() const;

  /// Number of distinct non-missing labels. O(n) (O(n log n) if labels are
  /// not normalized).
  std::size_t NumClusters() const;

  /// True iff u and v both have labels and the labels are equal.
  bool SameCluster(std::size_t u, std::size_t v) const {
    return labels_[u] != kMissing && labels_[u] == labels_[v];
  }

  const std::vector<Label>& labels() const { return labels_; }

  /// Relabels clusters to 0..k-1 in order of first appearance. Missing
  /// labels are preserved.
  void Normalize();
  Clustering Normalized() const;

  /// Member lists per cluster, in normalized label order. Missing-label
  /// objects appear in no list.
  std::vector<std::vector<std::size_t>> Clusters() const;

  /// Cluster sizes in normalized label order.
  std::vector<std::size_t> ClusterSizes() const;

  /// The induced clustering on `subset`: object i of the result has the
  /// (original) label of subset[i].
  Clustering Restrict(const std::vector<std::size_t>& subset) const;

  /// Returns a complete clustering in which each missing-label object is
  /// placed in its own fresh singleton cluster.
  Clustering WithMissingAsSingletons() const;

  /// OK iff every label is >= 0 or kMissing.
  Status Validate() const;

  /// True if the two clusterings are the same partition (equal up to a
  /// relabeling of cluster ids; missing sets must coincide).
  bool SamePartition(const Clustering& other) const;

  friend bool operator==(const Clustering& a, const Clustering& b) {
    return a.labels_ == b.labels_;
  }

 private:
  std::vector<Label> labels_;
};

}  // namespace clustagg

#endif  // CLUSTAGG_CORE_CLUSTERING_H_
