#ifndef CLUSTAGG_CORE_CLUSTERING_SET_H_
#define CLUSTAGG_CORE_CLUSTERING_SET_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "core/clustering.h"

namespace clustagg {

/// How a clustering with a missing label on u or v contributes to the
/// pairwise disagreement fraction X_uv (Section 2, "Missing values").
enum class MissingValuePolicy {
  /// The paper's adopted policy: the attribute tosses a coin and reports
  /// the pair as co-clustered with probability p. In expectation it
  /// contributes (1 - p) to the disagreement fraction. p defaults to 1/2.
  kRandomCoin,
  /// The averaging policy: attributes with a missing value on the pair
  /// are skipped and X_uv is the disagreeing fraction of the remaining
  /// attributes. A pair with no opinionated attribute gets X_uv = 1/2.
  kIgnore,
};

/// Options bundle for missing-value handling.
struct MissingValueOptions {
  MissingValuePolicy policy = MissingValuePolicy::kRandomCoin;
  /// Coin bias for kRandomCoin: probability of reporting "co-clustered".
  double coin_together_probability = 0.5;
};

/// An immutable collection of m clusterings over the same n objects — the
/// input of the clustering-aggregation problem. Supports on-the-fly
/// pairwise disagreement fractions (X_uv) so that large datasets can be
/// processed without materializing the O(n^2) matrix (used by SAMPLING).
///
/// Clusterings may carry positive weights (default 1), generalizing the
/// objective to the weighted median partition sum_i w_i d(C_i, C) — a
/// weight-w clustering behaves exactly like w unit-weight copies. Useful
/// when some inputs are more trustworthy (e.g. scaled by a quality
/// score).
class ClusteringSet {
 public:
  /// Validates that there is at least one clustering, all clusterings
  /// cover the same object count, all labels are well formed, and (when
  /// given) there is one strictly positive, finite weight per
  /// clustering.
  static Result<ClusteringSet> Create(std::vector<Clustering> clusterings,
                                      std::vector<double> weights = {});

  std::size_t num_objects() const { return num_objects_; }
  std::size_t num_clusterings() const { return clusterings_.size(); }
  const Clustering& clustering(std::size_t i) const { return clusterings_[i]; }
  const std::vector<Clustering>& clusterings() const { return clusterings_; }

  /// Weight of the i-th clustering (1 unless specified at Create).
  double weight(std::size_t i) const { return weights_[i]; }
  /// Sum of all weights (= m for unweighted inputs).
  double total_weight() const { return total_weight_; }

  /// True if any input clustering has a missing label.
  bool HasMissing() const { return has_missing_; }

  /// X_uv: the (expected) fraction of input clusterings that place u and v
  /// in different clusters, under the given missing-value policy. O(m).
  double PairwiseDistance(std::size_t u, std::size_t v,
                          const MissingValueOptions& missing = {}) const;

  /// D(C) = sum_i d(C_i, C): the (expected) total number of pairwise
  /// disagreements of a complete candidate clustering with the inputs.
  /// With complete inputs this is an exact integer; with missing values it
  /// is the expectation under the policy. O(m * n^2) in general; complete
  /// inputs use the O(m * (n + K^2)) contingency path.
  Result<double> TotalDisagreements(
      const Clustering& candidate,
      const MissingValueOptions& missing = {}) const;

 private:
  ClusteringSet(std::vector<Clustering> clusterings,
                std::vector<double> weights);

  std::vector<Clustering> clusterings_;
  std::vector<double> weights_;
  double total_weight_ = 0.0;
  std::size_t num_objects_ = 0;
  bool has_missing_ = false;
};

}  // namespace clustagg

#endif  // CLUSTAGG_CORE_CLUSTERING_SET_H_
