#ifndef CLUSTAGG_CORE_FURTHEST_H_
#define CLUSTAGG_CORE_FURTHEST_H_

#include <cstddef>
#include <string>

#include "core/clusterer.h"

namespace clustagg {

/// Options for the FURTHEST correlation clusterer.
struct FurthestOptions {
  /// Safety cap on the number of centers tried; 0 means up to n. The
  /// algorithm normally stops much earlier, as soon as adding a center
  /// stops improving the correlation cost.
  std::size_t max_centers = 0;
};

/// The FURTHEST algorithm (Section 4): top-down furthest-first traversal,
/// inspired by the Hochbaum-Shmoys 2-approximation for p-centers. Starts
/// with all objects in one cluster; repeatedly promotes the object
/// furthest from the current centers to a new center, assigns every
/// object to the center incurring the least cost, and keeps going while
/// the correlation cost improves. O(k^2 n) for the traversal plus
/// O(k n^2) for the cost evaluations, where k is the number of clusters
/// produced.
class FurthestClusterer final : public CorrelationClusterer {
 public:
  explicit FurthestClusterer(FurthestOptions options = {})
      : options_(options) {}

  std::string name() const override { return "FURTHEST"; }

  /// Polls `run` once per promoted center (plus inside the parallel seed
  /// scan and cost evaluations). Because the traversal keeps the best
  /// fully-scored clustering seen so far, an interrupt simply stops
  /// promoting centers and returns that clustering — at worst the single
  /// all-in-one cluster the algorithm starts from.
  Result<ClustererRun> RunControlled(const CorrelationInstance& instance,
                                     const RunContext& run) const override;

  const FurthestOptions& options() const { return options_; }

 private:
  FurthestOptions options_;
};

}  // namespace clustagg

#endif  // CLUSTAGG_CORE_FURTHEST_H_
