#ifndef CLUSTAGG_CORE_AGGLOMERATIVE_H_
#define CLUSTAGG_CORE_AGGLOMERATIVE_H_

#include <cstddef>
#include <string>

#include "core/clusterer.h"
#include "core/hierarchy.h"

namespace clustagg {

/// Options for the AGGLOMERATIVE correlation clusterer.
struct AgglomerativeOptions {
  /// Stop merging when the closest pair of clusters has average distance
  /// >= this threshold. The paper's parameter-free setting is 1/2: merging
  /// any pair with average distance >= 1/2 cannot improve the cost.
  double merge_threshold = 0.5;

  /// If nonzero, ignore the threshold and keep merging until exactly this
  /// many clusters remain (the "user insists on a predefined number of
  /// clusters" mode from Section 2).
  std::size_t target_clusters = 0;
};

/// The AGGLOMERATIVE algorithm (Section 4): bottom-up average-linkage
/// merging on the correlation distances, stopping when the closest pair
/// of clusters is at average distance >= 1/2. Guarantees that within each
/// output cluster the average pairwise distance is at most 1/2 ("the
/// opinion of the majority is respected on average"); achieves a
/// 2-approximation when the instance stems from m = 3 clusterings.
///
/// Complexity: O(n^2) after the distance matrix is built, via the
/// nearest-neighbor-chain engine in core/hierarchy.h.
class AgglomerativeClusterer final : public CorrelationClusterer {
 public:
  explicit AgglomerativeClusterer(AgglomerativeOptions options = {})
      : options_(options) {}

  std::string name() const override { return "AGGLOMERATIVE"; }

  /// Polls `run` while materializing the working matrix and once per
  /// merge. An interrupt mid-merge cuts the partial dendrogram — a valid
  /// partition that simply stopped agglomerating early (in
  /// target_clusters mode the cut is clamped to the merges actually
  /// performed, so the result may have more clusters than asked). An
  /// interrupt during matrix materialization returns all singletons, the
  /// state before any merge.
  Result<ClustererRun> RunControlled(const CorrelationInstance& instance,
                                     const RunContext& run) const override;

  const AgglomerativeOptions& options() const { return options_; }

 private:
  AgglomerativeOptions options_;
};

}  // namespace clustagg

#endif  // CLUSTAGG_CORE_AGGLOMERATIVE_H_
