#ifndef CLUSTAGG_CORE_HIERARCHY_H_
#define CLUSTAGG_CORE_HIERARCHY_H_

#include <cstddef>
#include <vector>

#include "common/run_context.h"
#include "common/status.h"
#include "common/symmetric_matrix.h"
#include "core/clustering.h"

namespace clustagg {

/// Lance-Williams linkage rules supported by the generic agglomerative
/// engine. All four are *reducible* (so the nearest-neighbor-chain
/// algorithm reproduces the greedy merge order) and *monotone* (merge
/// heights are non-decreasing, so cutting the dendrogram at a height
/// equals running greedy merging until that threshold).
enum class Linkage {
  kSingle,
  kComplete,
  kAverage,
  /// Ward's minimum-variance criterion. Feed *squared* Euclidean
  /// distances; heights come out in squared units.
  kWard,
};

const char* LinkageName(Linkage linkage);

/// A full merge tree produced by agglomerative clustering. Each merge is
/// recorded by one *representative leaf* of each merged side plus the
/// linkage height; replaying merges through a union-find reconstructs any
/// prefix partition, which makes cutting robust even under floating-point
/// ties in the heights.
struct Dendrogram {
  struct Merge {
    /// A leaf (original object index) inside the left merged cluster.
    std::size_t left;
    /// A leaf inside the right merged cluster.
    std::size_t right;
    double height;
  };

  std::size_t num_leaves = 0;
  /// num_leaves - 1 merges in the greedy (non-decreasing height) order —
  /// fewer when a budgeted agglomeration was cut short, in which case the
  /// recorded prefix is still a valid (partial) merge history.
  std::vector<Merge> merges;

  /// True when every merge was performed (merges.size() == num_leaves-1).
  bool complete() const {
    return num_leaves == 0 || merges.size() + 1 == num_leaves;
  }

  /// The partition obtained by applying every merge with height strictly
  /// below `threshold` (the paper's AGGLOMERATIVE stops when the closest
  /// pair is at average distance >= 1/2, i.e. threshold = 0.5). Valid on
  /// partial dendrograms too: unperformed merges simply leave their
  /// clusters apart.
  Clustering CutAtHeight(double threshold) const;

  /// The partition with exactly k clusters (k in [1, num_leaves]).
  /// FailedPrecondition when a partial dendrogram holds fewer than
  /// num_leaves - k merges.
  Result<Clustering> CutAtK(std::size_t k) const;
};

/// Runs bottom-up agglomerative clustering over an explicit initial
/// distance matrix using the nearest-neighbor-chain algorithm:
/// O(n^2) time and no extra distance copies (the matrix is consumed and
/// updated in place via the Lance-Williams recurrences).
///
/// `initial_sizes` optionally gives a weight to each leaf (used when the
/// leaves are themselves summaries of many objects, e.g. in SAMPLING
/// post-processing); defaults to all ones.
///
/// The engine polls `run` once per merge (O(n) work apart). When the
/// budget fires the dendrogram is returned with only the merges performed
/// so far and, if `outcome` is non-null, *outcome records why; cutting
/// such a prefix still yields a valid partition.
Result<Dendrogram> AgglomerateFull(SymmetricMatrix<double> distances,
                                   Linkage linkage,
                                   std::vector<double> initial_sizes = {},
                                   const RunContext& run = RunContext(),
                                   RunOutcome* outcome = nullptr);

}  // namespace clustagg

#endif  // CLUSTAGG_CORE_HIERARCHY_H_
