#include "core/exact.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/symmetric_matrix.h"
#include "core/instrumentation.h"

namespace clustagg {

namespace {

/// Depth-first enumeration of restricted-growth strings with
/// branch-and-bound: object i may join any cluster used by objects < i or
/// open a new one; the partial cost plus a per-pair lower bound on the
/// unassigned remainder prunes hopeless branches.
class ExactSearch {
 public:
  explicit ExactSearch(const CorrelationInstance& instance)
      : n_(instance.size()), local_(n_), w_(n_, 1.0), labels_(n_, 0),
        best_labels_(n_, 0) {
    // The search re-reads every pair exponentially many times, so
    // prefetch a local dense copy whatever the instance backend (the
    // solver is capped to tiny n, so this is a few hundred bytes).
    for (std::size_t u = 0; u < n_; ++u) {
      for (std::size_t v = u + 1; v < n_; ++v) {
        local_.Set(u, v, static_cast<float>(instance.distance(u, v)));
      }
    }
    // Folded instances weight pair (u, v) by w_u * w_v everywhere; the
    // all-ones unfolded case multiplies by 1.0, which is exact.
    if (instance.folded()) {
      for (std::size_t v = 0; v < n_; ++v) w_[v] = instance.multiplicity(v);
    }
    // remaining_lb_[i]: lower bound on the cost of all pairs with at
    // least one endpoint >= i (every pair costs at least min(X, 1-X)).
    remaining_lb_.assign(n_ + 1, 0.0);
    for (std::size_t i = n_; i-- > 0;) {
      double row = 0.0;
      for (std::size_t u = 0; u < i; ++u) {
        const double x = local_(u, i);
        row += std::min(x, 1.0 - x) * (w_[u] * w_[i]);
      }
      remaining_lb_[i] = remaining_lb_[i + 1] + row;
    }
  }

  /// Runs the search until it exhausts the space or `run` fires. The
  /// returned clustering is the incumbent at that moment; outcome says
  /// which. (Even an immediate interrupt returns a valid partition: the
  /// incumbent starts as the all-in-one-cluster assignment.)
  ClustererRun Solve(const RunContext& run) {
    run_ = &run;
    telemetry_ = run.telemetry();
    stop_ = RunOutcome::kConverged;
    nodes_ = 0;
    best_cost_ = std::numeric_limits<double>::infinity();
    Recurse(0, 0, 0.0);
    TelemetryCount(telemetry_, "exact.nodes", nodes_);
    std::vector<Clustering::Label> labels(n_);
    for (std::size_t v = 0; v < n_; ++v) {
      labels[v] = static_cast<Clustering::Label>(best_labels_[v]);
    }
    return ClustererRun{Clustering(std::move(labels)).Normalized(), stop_};
  }

  double best_cost() const { return best_cost_; }

 private:
  void Recurse(std::size_t i, std::size_t used, double partial) {
    // Poll every 4096 nodes: frequent enough that even tiny deadlines cut
    // the exponential search promptly, rare enough to stay off the
    // per-node hot path.
    if ((++nodes_ & 0xFFFu) == 0 && stop_ == RunOutcome::kConverged) {
      run_->ChargeIterations(0x1000);
      stop_ = run_->Poll();
    }
    if (stop_ != RunOutcome::kConverged) return;
    if (partial + remaining_lb_[i] >= best_cost_) return;
    if (i == n_) {
      best_cost_ = partial;
      best_labels_ = labels_;
      // Incumbent improvements: (nodes expanded so far, new best cost,
      // clusters in the incumbent). Rare relative to node expansions.
      TelemetryTracePoint(telemetry_, "exact", nodes_, best_cost_, used);
      return;
    }
    // Try clusters 0..used-1 and a fresh cluster `used`.
    const double wi = w_[i];
    for (std::size_t c = 0; c <= used; ++c) {
      labels_[i] = c;
      double delta = 0.0;
      for (std::size_t u = 0; u < i; ++u) {
        const double x = local_(u, i);
        delta += (labels_[u] == c ? x : 1.0 - x) * (w_[u] * wi);
      }
      Recurse(i + 1, c == used ? used + 1 : used, partial + delta);
    }
  }

  std::size_t n_;
  SymmetricMatrix<float> local_;
  /// Fold multiplicities (all 1.0 when unfolded).
  std::vector<double> w_;
  std::vector<std::size_t> labels_;
  std::vector<std::size_t> best_labels_;
  std::vector<double> remaining_lb_;
  double best_cost_ = 0.0;
  const RunContext* run_ = nullptr;
  Telemetry* telemetry_ = nullptr;
  RunOutcome stop_ = RunOutcome::kConverged;
  std::uint64_t nodes_ = 0;
};

}  // namespace

Result<ClustererRun> ExactClusterer::RunControlled(
    const CorrelationInstance& instance, const RunContext& run) const {
  const std::size_t n = instance.size();
  if (n > options_.max_objects) {
    return Status::ResourceExhausted(
        "exact solver limited to " + std::to_string(options_.max_objects) +
        " objects, got " + std::to_string(n) +
        " (raise ExactOptions::max_objects deliberately if you mean it)");
  }
  if (n == 0) return ClustererRun{Clustering(), RunOutcome::kConverged};
  ExactSearch search(instance);
  return search.Solve(run);
}

}  // namespace clustagg
