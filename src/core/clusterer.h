#ifndef CLUSTAGG_CORE_CLUSTERER_H_
#define CLUSTAGG_CORE_CLUSTERER_H_

#include <string>
#include <utility>

#include "common/run_context.h"
#include "common/status.h"
#include "core/clustering.h"
#include "core/correlation_instance.h"

namespace clustagg {

/// A budgeted clustering run: the (complete, normalized) partition plus
/// how the run ended. Whatever the outcome, `clustering` is a valid
/// clustering of the whole instance — a deadline or cancellation yields
/// the best partition found so far, never an error.
struct ClustererRun {
  Clustering clustering;
  RunOutcome outcome = RunOutcome::kConverged;
};

/// Interface for correlation-clustering algorithms: everything that can
/// take a distance matrix X and return a partition. All the paper's
/// aggregation algorithms except BESTCLUSTERING (which needs the original
/// clusterings) implement this, which is also what the SAMPLING
/// meta-algorithm composes over.
class CorrelationClusterer {
 public:
  virtual ~CorrelationClusterer() = default;

  /// Algorithm name as used in the paper's tables (e.g. "AGGLOMERATIVE").
  virtual std::string name() const = 0;

  /// Unlimited-budget convenience: clusters the instance to convergence.
  /// The result is a complete clustering of instance.size() objects with
  /// normalized labels.
  Result<Clustering> Run(const CorrelationInstance& instance) const {
    Result<ClustererRun> run = RunControlled(instance, RunContext());
    if (!run.ok()) return run.status();
    return std::move(run->clustering);
  }

  /// Budgeted run: polls `run` at bounded intervals (per pass, per opened
  /// cluster, per few thousand search nodes) and, when the deadline /
  /// iteration budget / cancellation fires, returns the best valid
  /// clustering found so far tagged with the outcome. Error statuses are
  /// reserved for invalid options or instances — a fired budget is not an
  /// error.
  virtual Result<ClustererRun> RunControlled(
      const CorrelationInstance& instance, const RunContext& run) const = 0;
};

}  // namespace clustagg

#endif  // CLUSTAGG_CORE_CLUSTERER_H_
