#ifndef CLUSTAGG_CORE_CLUSTERER_H_
#define CLUSTAGG_CORE_CLUSTERER_H_

#include <string>

#include "common/status.h"
#include "core/clustering.h"
#include "core/correlation_instance.h"

namespace clustagg {

/// Interface for correlation-clustering algorithms: everything that can
/// take a distance matrix X and return a partition. All the paper's
/// aggregation algorithms except BESTCLUSTERING (which needs the original
/// clusterings) implement this, which is also what the SAMPLING
/// meta-algorithm composes over.
class CorrelationClusterer {
 public:
  virtual ~CorrelationClusterer() = default;

  /// Algorithm name as used in the paper's tables (e.g. "AGGLOMERATIVE").
  virtual std::string name() const = 0;

  /// Clusters the instance. The result is a complete clustering of
  /// instance.size() objects with normalized labels.
  virtual Result<Clustering> Run(const CorrelationInstance& instance) const
      = 0;
};

}  // namespace clustagg

#endif  // CLUSTAGG_CORE_CLUSTERER_H_
