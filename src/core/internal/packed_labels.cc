#include "core/internal/packed_labels.h"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

#include "common/check.h"

namespace clustagg::internal {

namespace {

/// -1 = no override; otherwise a PackedKernelTier value forced by
/// SetPackedKernelTierForTest. Relaxed is enough: the override is a
/// test/bench knob flipped between builds, not a synchronization point.
std::atomic<int> g_tier_override{-1};

[[maybe_unused]] bool CpuHasAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

PackedKernelTier DefaultTier() {
  return Avx2KernelAvailable() ? PackedKernelTier::kAvx2
                               : PackedKernelTier::kSwar;
}

PackedKernelTier TierFromEnvironment() {
  const char* env = std::getenv("CLUSTAGG_KERNEL");
  if (env == nullptr || env[0] == '\0') return DefaultTier();
  if (std::strcmp(env, "portable") == 0) return PackedKernelTier::kPortable;
  if (std::strcmp(env, "swar") == 0) return PackedKernelTier::kSwar;
  if (std::strcmp(env, "avx2") == 0) {
    // Requesting avx2 on a build/CPU without it degrades to swar: the
    // tier-forcing ctest smoke runs all three values everywhere.
    return Avx2KernelAvailable() ? PackedKernelTier::kAvx2
                                 : PackedKernelTier::kSwar;
  }
  return DefaultTier();
}

/// Smallest supported lane width holding values 0..max_value.
std::uint32_t LaneWidthFor(std::uint32_t max_value) {
  const std::uint32_t bits =
      max_value == 0 ? 1u : static_cast<std::uint32_t>(
                                std::bit_width(max_value));
  return bits <= 1 ? 1u : std::uint32_t{1} << std::bit_width(bits - 1);
}

std::uint64_t LsbMaskFor(std::uint32_t width) {
  std::uint64_t mask = 0;
  for (std::uint32_t bit = 0; bit < 64; bit += width) {
    mask |= std::uint64_t{1} << bit;
  }
  return mask;
}

}  // namespace

bool Avx2KernelAvailable() {
#if defined(CLUSTAGG_HAVE_AVX2_KERNEL)
  static const bool available = CpuHasAvx2();
  return available;
#else
  return false;
#endif
}

PackedKernelTier ActivePackedKernelTier() {
  const int override = g_tier_override.load(std::memory_order_relaxed);
  if (override >= 0) return static_cast<PackedKernelTier>(override);
  static const PackedKernelTier from_env = TierFromEnvironment();
  return from_env;
}

const char* PackedKernelTierName(PackedKernelTier tier) {
  switch (tier) {
    case PackedKernelTier::kPortable:
      return "portable";
    case PackedKernelTier::kSwar:
      return "swar";
    case PackedKernelTier::kAvx2:
      return "avx2";
  }
  CLUSTAGG_CHECK(false);
  return "unknown";
}

void SetPackedKernelTierForTest(const PackedKernelTier* tier) {
  if (tier == nullptr) {
    g_tier_override.store(-1, std::memory_order_relaxed);
    return;
  }
  PackedKernelTier effective = *tier;
  if (effective == PackedKernelTier::kAvx2 && !Avx2KernelAvailable()) {
    effective = PackedKernelTier::kSwar;
  }
  g_tier_override.store(static_cast<int>(effective),
                        std::memory_order_relaxed);
}

std::unique_ptr<PackedLabels> PackLabelRows(const Clustering::Label* rows,
                                            std::size_t n, std::size_t m) {
  if (m == 0) return nullptr;
  constexpr std::size_t kMaxAlphabet = std::size_t{1} << 16;

  // Pass 1: remap each column's labels to 0..k-1 by first appearance
  // (only equality survives packing, so the remap changes nothing) and
  // record the column's lane width.
  std::vector<std::uint32_t> remapped(n * m);
  std::vector<std::uint32_t> width(m);
  std::unordered_map<Clustering::Label, std::uint32_t> alphabet;
  for (std::size_t i = 0; i < m; ++i) {
    alphabet.clear();
    std::uint32_t max_id = 0;
    for (std::size_t v = 0; v < n; ++v) {
      const Clustering::Label label = rows[v * m + i];
      auto [it, inserted] = alphabet.try_emplace(
          label, static_cast<std::uint32_t>(alphabet.size()));
      if (inserted && alphabet.size() > kMaxAlphabet) return nullptr;
      remapped[v * m + i] = it->second;
      if (it->second > max_id) max_id = it->second;
    }
    width[i] = LaneWidthFor(max_id);
  }

  // Pass 2: choose the layout. Candidate A groups columns by width into
  // separate word runs; candidate B rounds every column up to the
  // widest class. B can only tie or lose on lanes-per-word, but wins
  // whole words when small classes would each round up to a word of
  // their own (e.g. 1x8-bit + 2x4-bit: A = 2 words, B = 1).
  constexpr std::uint32_t kWidths[] = {16, 8, 4, 2, 1};
  std::size_t count_by_width[5] = {0, 0, 0, 0, 0};
  std::uint32_t max_width = 1;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t w = 0; w < 5; ++w) {
      if (width[i] == kWidths[w]) ++count_by_width[w];
    }
    if (width[i] > max_width) max_width = width[i];
  }
  std::size_t words_a = 0;
  for (std::size_t w = 0; w < 5; ++w) {
    const std::size_t lanes_per_word = 64 / kWidths[w];
    words_a += (count_by_width[w] + lanes_per_word - 1) / lanes_per_word;
  }
  const std::size_t lanes_b = 64 / max_width;
  const std::size_t words_b = (m + lanes_b - 1) / lanes_b;
  const bool uniform = words_b < words_a;

  auto packed = std::make_unique<PackedLabels>();
  packed->n = n;
  packed->m = m;

  // Assign every column a (word slot, bit shift) and materialize the
  // class table. Classes are laid out widest-first so the table is
  // deterministic whatever order widths appear in.
  std::vector<std::uint32_t> slot(m);
  std::vector<std::uint32_t> shift(m);
  std::uint32_t next_word = 0;
  for (std::size_t w = 0; w < 5; ++w) {
    const std::uint32_t class_width = uniform ? max_width : kWidths[w];
    std::size_t lanes = 0;
    const std::uint32_t begin_word = next_word;
    const std::size_t lanes_per_word = 64 / class_width;
    for (std::size_t i = 0; i < m; ++i) {
      if (!uniform && width[i] != kWidths[w]) continue;
      slot[i] = begin_word +
                static_cast<std::uint32_t>(lanes / lanes_per_word);
      shift[i] = static_cast<std::uint32_t>(lanes % lanes_per_word) *
                 class_width;
      ++lanes;
    }
    if (lanes == 0) {
      if (uniform) break;
      continue;
    }
    next_word = begin_word + static_cast<std::uint32_t>(
                                 (lanes + lanes_per_word - 1) /
                                 lanes_per_word);
    PackedClass cls;
    cls.width = class_width;
    cls.begin_word = begin_word;
    cls.end_word = next_word;
    cls.lsb_mask = LsbMaskFor(class_width);
    packed->classes.push_back(cls);
    if (uniform) break;
  }
  packed->words_per_object = next_word;
  CLUSTAGG_CHECK(packed->words_per_object == (uniform ? words_b : words_a));

  // Multiply-sum eligibility: (collapsed * lsb_mask) computes per-lane
  // prefix sums of the 0/1 lane bits; the top lane holds the total. No
  // carry crosses lanes as long as every prefix sum fits in the lane
  // width, i.e. m < 2^width.
  if (packed->words_per_object == 1) {
    const std::uint32_t w = packed->classes[0].width;
    packed->mul_count_ok = w < 64 && m < (std::size_t{1} << w);
    packed->mul_shift = 64 - w;
  }

  // Pass 3: scatter the remapped labels into the lanes.
  packed->words.assign(n * packed->words_per_object, 0);
  for (std::size_t v = 0; v < n; ++v) {
    std::uint64_t* out = packed->words.data() + v * packed->words_per_object;
    const std::uint32_t* in = remapped.data() + v * m;
    for (std::size_t i = 0; i < m; ++i) {
      out[slot[i]] |= static_cast<std::uint64_t>(in[i]) << shift[i];
    }
  }
  return packed;
}

namespace {

/// Portable bulk fill over the single-word layout: one XOR + collapse +
/// count per pair, with the v-words prefetched a few cache lines ahead
/// (the packed array is object-major, so the walk is sequential). The
/// mismatch count indexes the precomputed value LUT, so the hot loop
/// carries no division at all.
template <typename Out>
void RowFillSingleWord(const PackedLabels& p, std::size_t u, std::size_t v0,
                       std::size_t v1, const double* value_lut, Out* out) {
  const PackedClass& c = p.classes[0];
  const std::uint32_t width = c.width;
  const std::uint64_t mask = c.lsb_mask;
  const std::uint64_t uw = p.words[u];
  const std::uint64_t* vw = p.words.data() + v0;
  const std::size_t count = v1 - v0;
  if (p.mul_count_ok) {
    const std::uint32_t shift = p.mul_shift;
    for (std::size_t i = 0; i < count; ++i) {
      if ((i & 31u) == 0 && i + 64 < count) {
        __builtin_prefetch(vw + i + 64, 0, 0);
      }
      const std::uint64_t collapsed =
          CollapseToLaneLsb(uw ^ vw[i], width, mask);
      out[i] = static_cast<Out>(value_lut[(collapsed * mask) >> shift]);
    }
    return;
  }
  for (std::size_t i = 0; i < count; ++i) {
    if ((i & 31u) == 0 && i + 64 < count) {
      __builtin_prefetch(vw + i + 64, 0, 0);
    }
    const std::uint64_t collapsed =
        CollapseToLaneLsb(uw ^ vw[i], width, mask);
    out[i] = static_cast<Out>(value_lut[Popcount64(collapsed)]);
  }
}

template <typename Out>
void RowFillGeneral(const PackedLabels& p, std::size_t u, std::size_t v0,
                    std::size_t v1, const double* value_lut, Out* out) {
  for (std::size_t v = v0; v < v1; ++v) {
    if (((v - v0) & 15u) == 0 && v + 16 < v1) {
      __builtin_prefetch(p.row(v + 16), 0, 0);
    }
    out[v - v0] =
        static_cast<Out>(value_lut[CountMismatchesPacked(p, u, v)]);
  }
}

[[maybe_unused]] bool UseAvx2(const PackedLabels& p) {
#if defined(CLUSTAGG_HAVE_AVX2_KERNEL)
  return p.words_per_object == 1 && Avx2KernelAvailable() &&
         ActivePackedKernelTier() == PackedKernelTier::kAvx2;
#else
  (void)p;
  return false;
#endif
}

}  // namespace

std::vector<double> BuildPackedValueLut(std::size_t m, double total_weight) {
  std::vector<double> lut(m + 1);
  for (std::size_t c = 0; c <= m; ++c) {
    // Exactly the scalar fast path's arithmetic, precomputed: the float
    // rounding step is what keeps every tier bit-identical, and storing
    // the result as double round-trips losslessly for both consumers.
    lut[c] = static_cast<double>(
        static_cast<float>(static_cast<double>(c) / total_weight));
  }
  return lut;
}

void PackedMismatchRowFloat(const PackedLabels& p, std::size_t u,
                            std::size_t v0, std::size_t v1,
                            [[maybe_unused]] double total_weight,
                            const double* value_lut, float* out) {
  CLUSTAGG_CHECK(u < p.n && v0 <= v1 && v1 <= p.n);
#if defined(CLUSTAGG_HAVE_AVX2_KERNEL)
  if (UseAvx2(p)) {
    PackedMismatchRowFloatAvx2(p, u, v0, v1, total_weight, out);
    return;
  }
#endif
  if (p.words_per_object == 1) {
    RowFillSingleWord(p, u, v0, v1, value_lut, out);
  } else {
    RowFillGeneral(p, u, v0, v1, value_lut, out);
  }
}

void PackedMismatchRowDouble(const PackedLabels& p, std::size_t u,
                             std::size_t v0, std::size_t v1,
                             [[maybe_unused]] double total_weight,
                             const double* value_lut, double* out) {
  CLUSTAGG_CHECK(u < p.n && v0 <= v1 && v1 <= p.n);
#if defined(CLUSTAGG_HAVE_AVX2_KERNEL)
  if (UseAvx2(p)) {
    PackedMismatchRowDoubleAvx2(p, u, v0, v1, total_weight, out);
    return;
  }
#endif
  if (p.words_per_object == 1) {
    RowFillSingleWord(p, u, v0, v1, value_lut, out);
  } else {
    RowFillGeneral(p, u, v0, v1, value_lut, out);
  }
}

void PackedAgreementRow(const PackedLabels& p, std::size_t u, std::size_t v0,
                        std::size_t v1, char* agree) {
  CLUSTAGG_CHECK(u < p.n && v0 <= v1 && v1 <= p.n);
  const std::size_t m = p.m;
  if (p.words_per_object == 1) {
    const PackedClass& c = p.classes[0];
    const std::uint64_t uw = p.words[u];
    const std::uint64_t* vw = p.words.data() + v0;
    const std::size_t count = v1 - v0;
    const bool mul = p.mul_count_ok;
    const std::uint32_t shift = p.mul_shift;
    for (std::size_t i = 0; i < count; ++i) {
      if ((i & 31u) == 0 && i + 64 < count) {
        __builtin_prefetch(vw + i + 64, 0, 0);
      }
      const std::uint64_t collapsed =
          CollapseToLaneLsb(uw ^ vw[i], c.width, c.lsb_mask);
      const std::size_t mismatches =
          mul ? (collapsed * c.lsb_mask) >> shift : Popcount64(collapsed);
      agree[i] = 2 * mismatches < m ? 1 : 0;
    }
    return;
  }
  for (std::size_t v = v0; v < v1; ++v) {
    agree[v - v0] = 2 * CountMismatchesPacked(p, u, v) < m ? 1 : 0;
  }
}

}  // namespace clustagg::internal
