// AVX2 bulk row kernel for the packed mismatch count. Compiled only
// under CLUSTAGG_NATIVE (see src/CMakeLists.txt), with -mavx2 applied
// to this translation unit alone so the rest of the library stays
// portable; callers additionally gate on Avx2KernelAvailable(), which
// checks the CPU at runtime, so a CLUSTAGG_NATIVE binary still runs
// correctly on machines without AVX2.
//
// Strategy (single-word layouts, the m <= 9 small-alphabet hot case):
// four objects' words per iteration — 256-bit load of four consecutive
// v-words (object-major storage makes them contiguous), XOR against the
// broadcast u-word, the same SWAR lane collapse as the scalar kernel
// using vector shifts, then a per-64-bit-lane popcount via the classic
// nibble-LUT pshufb + psadbw reduction. Counts are exact integers, and
// the float conversion path (cvtepi32_pd, divpd by the broadcast total
// weight, cvtpd_ps) performs the identical IEEE operations the scalar
// path does — double(count) / total_weight rounded once to float — so
// the AVX2 tier is bit-identical to SWAR and portable.

#include "core/internal/packed_labels.h"

#if defined(CLUSTAGG_HAVE_AVX2_KERNEL)

#include <immintrin.h>

#include "common/check.h"

namespace clustagg::internal {

namespace {

/// Per-64-bit-lane popcount: nibble lookup + horizontal byte sum.
inline __m256i Popcount64x4(__m256i x) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(x, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(x, 4), low_mask);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                         _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

/// Vector form of CollapseToLaneLsb: same OR-shift cascade, same mask.
template <std::uint32_t kWidth>
inline __m256i Collapse(__m256i x, __m256i lsb_mask) {
  if constexpr (kWidth == 1) return x;
  if constexpr (kWidth >= 16) x = _mm256_or_si256(x, _mm256_srli_epi64(x, 8));
  if constexpr (kWidth >= 8) x = _mm256_or_si256(x, _mm256_srli_epi64(x, 4));
  if constexpr (kWidth >= 4) x = _mm256_or_si256(x, _mm256_srli_epi64(x, 2));
  x = _mm256_or_si256(x, _mm256_srli_epi64(x, 1));
  return _mm256_and_si256(x, lsb_mask);
}

/// Core loop: Out is float or double; double outputs are still rounded
/// through float first (cvtpd_ps then widened) to keep the backend
/// bit-identity contract.
template <std::uint32_t kWidth, typename Out>
void RowFillAvx2(const PackedLabels& p, std::size_t u, std::size_t v0,
                 std::size_t v1, double total_weight, Out* out) {
  const std::uint64_t uw = p.words[u];
  const __m256i broadcast_u = _mm256_set1_epi64x(
      static_cast<long long>(uw));
  const __m256i lsb_mask = _mm256_set1_epi64x(
      static_cast<long long>(p.classes[0].lsb_mask));
  const __m256d weight = _mm256_set1_pd(total_weight);
  const std::uint64_t* vw = p.words.data() + v0;
  const std::size_t count = v1 - v0;
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    if ((i & 31u) == 0 && i + 64 < count) {
      __builtin_prefetch(vw + i + 64, 0, 0);
    }
    const __m256i words = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(vw + i));
    const __m256i collapsed =
        Collapse<kWidth>(_mm256_xor_si256(words, broadcast_u), lsb_mask);
    const __m256i counts64 = Popcount64x4(collapsed);
    // Counts are <= 64, so the low 32 bits of each 64-bit lane carry
    // them all; gather lanes {0,2,4,6} into the low 128 bits.
    const __m256i packed32 = _mm256_permutevar8x32_epi32(
        counts64, _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0));
    const __m256d quotient = _mm256_div_pd(
        _mm256_cvtepi32_pd(_mm256_castsi256_si128(packed32)), weight);
    const __m128 rounded = _mm256_cvtpd_ps(quotient);
    if constexpr (sizeof(Out) == sizeof(float)) {
      _mm_storeu_ps(reinterpret_cast<float*>(out + i), rounded);
    } else {
      _mm256_storeu_pd(reinterpret_cast<double*>(out + i),
                       _mm256_cvtps_pd(rounded));
    }
  }
  for (; i < count; ++i) {
    const std::uint64_t collapsed = CollapseToLaneLsb(
        uw ^ vw[i], p.classes[0].width, p.classes[0].lsb_mask);
    out[i] = static_cast<Out>(static_cast<float>(
        static_cast<double>(Popcount64(collapsed)) / total_weight));
  }
}

template <typename Out>
void DispatchWidth(const PackedLabels& p, std::size_t u, std::size_t v0,
                   std::size_t v1, double total_weight, Out* out) {
  CLUSTAGG_CHECK(p.words_per_object == 1);
  switch (p.classes[0].width) {
    case 1:
      RowFillAvx2<1>(p, u, v0, v1, total_weight, out);
      return;
    case 2:
      RowFillAvx2<2>(p, u, v0, v1, total_weight, out);
      return;
    case 4:
      RowFillAvx2<4>(p, u, v0, v1, total_weight, out);
      return;
    case 8:
      RowFillAvx2<8>(p, u, v0, v1, total_weight, out);
      return;
    default:
      RowFillAvx2<16>(p, u, v0, v1, total_weight, out);
      return;
  }
}

}  // namespace

void PackedMismatchRowFloatAvx2(const PackedLabels& p, std::size_t u,
                                std::size_t v0, std::size_t v1,
                                double total_weight, float* out) {
  DispatchWidth(p, u, v0, v1, total_weight, out);
}

void PackedMismatchRowDoubleAvx2(const PackedLabels& p, std::size_t u,
                                 std::size_t v0, std::size_t v1,
                                 double total_weight, double* out) {
  DispatchWidth(p, u, v0, v1, total_weight, out);
}

}  // namespace clustagg::internal

#endif  // CLUSTAGG_HAVE_AVX2_KERNEL
