#ifndef CLUSTAGG_CORE_INTERNAL_PACKED_LABELS_H_
#define CLUSTAGG_CORE_INTERNAL_PACKED_LABELS_H_

// Bit-packed label rows for the mismatch-count kernel.
//
// The whole Gionis-Mannila-Tsaparas pipeline keeps asking one question:
// on how many of the m input clusterings do objects u and v disagree?
// For *plain* instances (no missing labels, unit weights) the answer is
// an integer mismatch count over two m-length label rows, and only
// label *equality* matters — never the label values themselves. So each
// column's labels can be re-encoded into a dense alphabet 0..k-1 and
// packed into fixed-width bit lanes of 64-bit words, after which the
// count collapses to XOR + lane-collapse + popcount SWAR over whole
// words: one word (m <= 9, small alphabets) instead of 36+ bytes per
// object, and ~4 ALU ops per 16 lanes instead of one compare each.
//
// The count is exactly the integer the byte-compare loop produces, so
// every downstream float (count / total_weight rounded through float)
// is bit-identical to the general path — the packed kernel is a pure
// speedup, invisible to every backend-equivalence property test.
//
// Layout. Each column i gets a lane width: the smallest power of two in
// {1, 2, 4, 8, 16} holding its remapped alphabet. Columns are grouped
// by width into *classes*; a class of width B packs 64/B lanes per word
// into its own run of words (lanes never straddle words or mix widths,
// keeping the SWAR collapse mask uniform per word). When rounding every
// column up to the widest class's width would use no more words, the
// builder does that instead (single class, simpler hot loop). Objects
// are word-major: words[v * words_per_object + slot].
//
// Eligibility. Packing fails (returns nullptr) only when some column
// has more than 2^16 distinct labels (lane width would exceed 16 bits)
// or m == 0; callers then keep the general byte-compare path. Whether
// the *mismatch-count semantics* apply (no missing labels, unit
// weights) is the caller's check — SignatureIndex packs rows with
// missing sentinels too, because it only needs equality of whole rows.
//
// Dispatch. Three tiers, selected once per process from the
// CLUSTAGG_KERNEL environment variable (portable | swar | avx2) with
// CPU detection as the default: kPortable disables packing entirely
// (the pre-packing byte loops), kSwar uses these uint64_t kernels, and
// kAvx2 additionally routes bulk row fills through the AVX2 kernel
// compiled under CLUSTAGG_NATIVE (runtime-checked, so binaries stay
// safe on CPUs without AVX2). See docs/performance.md ("Packed
// labels").

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/clustering.h"

namespace clustagg::internal {

/// Kernel tier resolved from CLUSTAGG_KERNEL + CPU detection.
enum class PackedKernelTier { kPortable = 0, kSwar = 1, kAvx2 = 2 };

/// The active tier (cached; first call reads the environment). Packing
/// decisions are made at source-build time, so changing the override
/// mid-process only affects sources built afterwards.
PackedKernelTier ActivePackedKernelTier();

/// Stable lowercase tier name ("portable" / "swar" / "avx2").
const char* PackedKernelTierName(PackedKernelTier tier);

/// Test/bench hook: force a tier (kAvx2 silently degrades to kSwar when
/// the AVX2 kernel is not compiled in or the CPU lacks it). Pass
/// nullptr to restore the environment/CPU default.
void SetPackedKernelTierForTest(const PackedKernelTier* tier);

/// True when the AVX2 row kernel is compiled in (CLUSTAGG_NATIVE) and
/// this CPU supports AVX2.
bool Avx2KernelAvailable();

/// One run of same-width words in every object's packed row.
struct PackedClass {
  /// Lane width in bits: 1, 2, 4, 8, or 16.
  std::uint32_t width = 0;
  /// Word-slot range [begin_word, end_word) inside each object's row.
  std::uint32_t begin_word = 0;
  std::uint32_t end_word = 0;
  /// Lane-LSB mask for the SWAR collapse (bit w*width set for every
  /// lane w, e.g. 0x1111... for width 4).
  std::uint64_t lsb_mask = 0;
};

struct PackedLabels {
  std::size_t n = 0;
  std::size_t m = 0;
  std::size_t words_per_object = 0;
  /// Object-major packed rows: words[v * words_per_object + slot].
  std::vector<std::uint64_t> words;
  /// Width classes ordered by descending width; their word ranges tile
  /// [0, words_per_object) exactly.
  std::vector<PackedClass> classes;
  /// True when a collapsed word's lane bits can be summed with one
  /// multiply by lsb_mask (the lane-width accumulator cannot overflow:
  /// width >= 8, or width == 4 with at most 15 occupied lanes). Then
  /// (collapsed * lsb_mask) >> mul_shift is the mismatch count — 2 ops
  /// instead of the 11-op SWAR popcount. Single-word layouts only.
  bool mul_count_ok = false;
  std::uint32_t mul_shift = 0;

  const std::uint64_t* row(std::size_t v) const {
    return words.data() + v * words_per_object;
  }
};

/// Packs object-major label rows (rows[v * m + i] = label of object v
/// under clustering i). Labels are remapped per column by first
/// appearance, so any int32 labels — including the kMissing sentinel —
/// pack as long as each column has at most 2^16 distinct values.
/// Returns nullptr when ineligible (alphabet too wide, or m == 0).
std::unique_ptr<PackedLabels> PackLabelRows(const Clustering::Label* rows,
                                            std::size_t n, std::size_t m);

/// Branch-free SWAR popcount (no POPCNT ISA requirement, so the
/// portable library build never falls back to a libgcc call).
inline std::uint64_t Popcount64(std::uint64_t x) {
  x -= (x >> 1) & 0x5555555555555555ull;
  x = (x & 0x3333333333333333ull) + ((x >> 2) & 0x3333333333333333ull);
  x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0full;
  return (x * 0x0101010101010101ull) >> 56;
}

/// Collapses every `width`-bit lane of x to its lane LSB: the result
/// has bit w*width set iff lane w was nonzero. ORing x >> {1, 2, ...}
/// folds every lane bit down by offsets covering [0, width); bits
/// spilling in from the next-higher lane travel at most width-1
/// positions, which never reaches the lane below's LSB, so the final
/// mask sees no cross-lane contamination.
inline std::uint64_t CollapseToLaneLsb(std::uint64_t x, std::uint32_t width,
                                       std::uint64_t lsb_mask) {
  switch (width) {
    case 1:
      return x;
    case 2:
      return (x | (x >> 1)) & lsb_mask;
    case 4:
      x |= x >> 2;
      x |= x >> 1;
      return x & lsb_mask;
    case 8:
      x |= x >> 4;
      x |= x >> 2;
      x |= x >> 1;
      return x & lsb_mask;
    default:  // 16
      x |= x >> 8;
      x |= x >> 4;
      x |= x >> 2;
      x |= x >> 1;
      return x & lsb_mask;
  }
}

/// Number of clusterings on which u and v disagree — exactly the
/// integer the byte-compare loop over the unpacked rows produces.
inline std::size_t CountMismatchesPacked(const PackedLabels& p,
                                         std::size_t u, std::size_t v) {
  const std::uint64_t* a = p.row(u);
  const std::uint64_t* b = p.row(v);
  if (p.words_per_object == 1) {
    const PackedClass& c = p.classes[0];
    const std::uint64_t collapsed =
        CollapseToLaneLsb(a[0] ^ b[0], c.width, c.lsb_mask);
    return p.mul_count_ok
               ? (collapsed * c.lsb_mask) >> p.mul_shift
               : Popcount64(collapsed);
  }
  std::size_t total = 0;
  for (const PackedClass& c : p.classes) {
    for (std::uint32_t w = c.begin_word; w < c.end_word; ++w) {
      total += Popcount64(CollapseToLaneLsb(a[w] ^ b[w], c.width,
                                            c.lsb_mask));
    }
  }
  return total;
}

/// Equality of two packed rows — equivalent to equality of the original
/// label rows (per-column remapping is injective). SignatureIndex's
/// collision check.
inline bool PackedRowsEqual(const PackedLabels& p, std::size_t u,
                            std::size_t v) {
  const std::uint64_t* a = p.row(u);
  const std::uint64_t* b = p.row(v);
  for (std::size_t w = 0; w < p.words_per_object; ++w) {
    if (a[w] != b[w]) return false;
  }
  return true;
}

/// FNV-1a over a packed row's words. Hash quality only affects bucket
/// balance, never grouping (collisions are resolved by PackedRowsEqual).
inline std::uint64_t HashPackedRow(const PackedLabels& p, std::size_t v) {
  const std::uint64_t* a = p.row(v);
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t w = 0; w < p.words_per_object; ++w) {
    h ^= a[w];
    h *= 1099511628211ull;
  }
  return h;
}

/// Precomputed count -> value table: lut[c] =
/// double(float(double(c) / total_weight)) for c in [0, m]. The scalar
/// row kernels index this instead of dividing per pair; the entries are
/// computed with the exact arithmetic of the scalar fast path, so the
/// LUT changes nothing but speed.
std::vector<double> BuildPackedValueLut(std::size_t m, double total_weight);

/// Bulk row fill for the dense tiled build: out[v - v0] =
/// float(double(count(u, v)) / total_weight) for v in [v0, v1) — the
/// exact arithmetic of the scalar fast path, so the filled matrix is
/// bit-identical whichever tier runs. value_lut must be a
/// BuildPackedValueLut(p.m, total_weight) table. Routes through the
/// AVX2 kernel (which divides in-register instead of using the LUT)
/// when the active tier is kAvx2 and the layout is single-word;
/// otherwise the portable SWAR loop (with explicit prefetch) runs.
void PackedMismatchRowFloat(const PackedLabels& p, std::size_t u,
                            std::size_t v0, std::size_t v1,
                            double total_weight, const double* value_lut,
                            float* out);

/// Same for double consumers (lazy FillRow): every value is rounded
/// through float first, preserving the backend bit-identity contract.
void PackedMismatchRowDouble(const PackedLabels& p, std::size_t u,
                             std::size_t v0, std::size_t v1,
                             double total_weight, const double* value_lut,
                             double* out);

/// Agreement test row for the shard decompose scan: agree[v] != 0 iff
/// X_uv < 1/2, decided as the exact integer test 2 * count < m (u == v
/// counts as agreement). Equivalent to comparing the float-rounded
/// distance against 0.5 for any m below ~2^24: count/m <= 1/2 - 1/(2m)
/// sits further from 0.5 than half a float ulp, so rounding can never
/// cross the threshold, and count/m == 1/2 is exact in both forms.
void PackedAgreementRow(const PackedLabels& p, std::size_t u,
                        std::size_t v0, std::size_t v1, char* agree);

#if defined(CLUSTAGG_HAVE_AVX2_KERNEL)
/// AVX2 implementations (packed_kernel_avx2.cc, compiled with -mavx2
/// under CLUSTAGG_NATIVE). Single-word layouts only; callers guard with
/// Avx2KernelAvailable() and words_per_object == 1.
void PackedMismatchRowFloatAvx2(const PackedLabels& p, std::size_t u,
                                std::size_t v0, std::size_t v1,
                                double total_weight, float* out);
void PackedMismatchRowDoubleAvx2(const PackedLabels& p, std::size_t u,
                                 std::size_t v0, std::size_t v1,
                                 double total_weight, double* out);
#endif  // CLUSTAGG_HAVE_AVX2_KERNEL

}  // namespace clustagg::internal

#endif  // CLUSTAGG_CORE_INTERNAL_PACKED_LABELS_H_
