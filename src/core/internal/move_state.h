#ifndef CLUSTAGG_CORE_INTERNAL_MOVE_STATE_H_
#define CLUSTAGG_CORE_INTERNAL_MOVE_STATE_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "core/clustering.h"
#include "core/correlation_instance.h"

namespace clustagg::internal {

/// Mutable single-object-move state shared by LOCALSEARCH and ANNEALING:
/// cluster slots with sizes and the M(v, slot) = sum_{u in slot} X_vu
/// table (Section 4's bookkeeping). Evaluating all moves of one object
/// costs O(#clusters); applying a move costs O(n) for the two affected
/// M rows. Slots are compacted when a cluster empties.
///
/// Folded instances (CorrelationInstance::folded) generalize every sum
/// with the fold multiplicities: M(v, slot) = sum_{u in slot} w_u X_vu,
/// slot sizes become sum_{u in slot} w_u, and a move of v — which stands
/// for w_v identical originals moving together — has its cost delta
/// scaled by w_v so LOCALSEARCH thresholds and ANNEALING temperatures
/// operate on true-objective deltas. With all-ones multiplicities the
/// weighted arithmetic is bit-identical to the historical unweighted
/// state (multiplying by 1.0 is exact, and sums of 1.0 reproduce the
/// integer sizes exactly).
class MoveState {
 public:
  /// Sentinel target meaning "open a fresh singleton cluster".
  static constexpr std::size_t kSingletonTarget =
      static_cast<std::size_t>(-1);

  MoveState(const CorrelationInstance& instance, const Clustering& initial)
      : MoveState(instance, initial, RunContext(), nullptr) {}

  /// Budgeted construction: building the M table is the O(n^2) (dense) /
  /// O(n^2 m) (lazy) up-front cost of both sweep algorithms, so it polls
  /// `run` too. When it is interrupted, *completed is set false and the
  /// state is NOT usable for moves — callers must discard it and return
  /// their starting partition unchanged. (A half-built M table would
  /// silently corrupt every subsequent move evaluation.)
  MoveState(const CorrelationInstance& instance, const Clustering& initial,
            const RunContext& run, bool* completed)
      : instance_(instance), n_(instance.size()), row_buf_(n_) {
    const Clustering norm = initial.Normalized();
    const std::size_t k = norm.NumClusters();
    w_.assign(n_, 1.0);
    if (instance.folded()) {
      for (std::size_t v = 0; v < n_; ++v) w_[v] = instance.multiplicity(v);
    }
    assignment_.resize(n_);
    sizes_.assign(k, 0);
    wsizes_.assign(k, 0.0);
    m_.assign(k, std::vector<double>(n_, 0.0));
    for (std::size_t v = 0; v < n_; ++v) {
      const auto c = static_cast<std::size_t>(norm.label(v));
      assignment_[v] = c;
      ++sizes_[c];
      wsizes_[c] += w_[v];
    }
    // Column u of every M row is owned by exactly one task, so rows of
    // the distance source can be consumed in parallel; each m_[c][u]
    // still accumulates its members in ascending v, the serial order,
    // making the table bit-identical for every thread count.
    const std::size_t threads =
        EffectiveRowThreads(n_, ResolveThreadCount(instance.num_threads()));
    std::vector<std::vector<double>> rows(threads, std::vector<double>(n_));
    const bool ok = ParallelForRowsCancellable(
        n_, threads, run, [&](std::size_t u, std::size_t tid) {
          std::vector<double>& row = rows[tid];
          instance_.FillRow(u, row);
          for (std::size_t v = 0; v < n_; ++v) {
            if (v != u) m_[assignment_[v]][u] += w_[v] * row[v];
          }
        });
    if (completed != nullptr) *completed = ok;
  }

  std::size_t num_objects() const { return n_; }
  std::size_t num_clusters() const { return sizes_.size(); }
  std::size_t cluster_of(std::size_t v) const { return assignment_[v]; }
  std::size_t cluster_size(std::size_t c) const { return sizes_[c]; }

  /// d(v, C_j) for every current cluster j plus the fresh-singleton cost,
  /// all with v conceptually removed from its own cluster:
  ///   singleton = T = sum_j (|C_j| - M(v, C_j)),
  ///   join(j)   = T + 2 M(v, C_j) - |C_j|.
  /// Returns {T, join costs per slot}. Under folding, sizes and M are the
  /// weighted sums and the values are per original copy of v (not scaled
  /// by w_v), so relative comparisons between targets are unchanged.
  std::pair<double, std::vector<double>> EvaluateMoves(
      std::size_t v) const {
    const std::size_t current = assignment_[v];
    const double wv = w_[v];
    const std::size_t k = sizes_.size();
    double t = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      t += SizeWithoutV(j, current, wv) - m_[j][v];
    }
    std::vector<double> join(k);
    for (std::size_t j = 0; j < k; ++j) {
      join[j] = t + 2.0 * m_[j][v] - SizeWithoutV(j, current, wv);
    }
    return {t, std::move(join)};
  }

  /// Greedy step: evaluates every move for v and applies the best one if
  /// it improves on staying by more than `min_improvement` (allocation-
  /// free; the hot path of LOCALSEARCH). Returns true if v moved; a move
  /// adds its cost decrease (strictly positive) to *improvement when the
  /// pointer is non-null, letting callers accumulate a convergence curve
  /// without re-deriving costs. A nonzero `max_cluster_size` filters the
  /// join candidates to clusters that would stay within the cap (in
  /// weighted objects — fold multiplicities count); the fresh-singleton
  /// target is always legal.
  bool TryImproveBest(std::size_t v, double min_improvement,
                      double* improvement = nullptr,
                      std::size_t max_cluster_size = 0) {
    const std::size_t current = assignment_[v];
    const double wv = w_[v];
    const std::size_t k = sizes_.size();
    double t = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      t += SizeWithoutV(j, current, wv) - m_[j][v];
    }
    auto join_cost = [&](std::size_t j) {
      return t + 2.0 * m_[j][v] - SizeWithoutV(j, current, wv);
    };
    const double cap = static_cast<double>(max_cluster_size);
    const double stay_cost = join_cost(current);
    double best_cost = t;  // fresh singleton
    std::size_t best = kSingletonTarget;
    for (std::size_t j = 0; j < k; ++j) {
      if (max_cluster_size != 0 && j != current &&
          SizeWithoutV(j, current, wv) + wv > cap) {
        continue;
      }
      const double c = join_cost(j);
      if (c < best_cost) {
        best_cost = c;
        best = j;
      }
    }
    // Scale by w_v: the decrease in the true objective is w_v times the
    // per-copy decrease, and the convergence threshold is expressed in
    // true-objective units. w_v = 1.0 leaves the historical arithmetic
    // bit-identical.
    if (best == current ||
        wv * (stay_cost - best_cost) <= min_improvement) {
      return false;
    }
    if (improvement != nullptr) {
      *improvement += wv * (stay_cost - best_cost);
    }
    Apply(v, best);
    return true;
  }

  /// Cost delta of moving v to `target` (a slot index or
  /// kSingletonTarget) relative to staying put, in true-objective units
  /// (scaled by w_v under folding). O(#clusters), allocation-free.
  double MoveDelta(std::size_t v, std::size_t target) const {
    const std::size_t current = assignment_[v];
    const double wv = w_[v];
    const std::size_t k = sizes_.size();
    double t = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      t += SizeWithoutV(j, current, wv) - m_[j][v];
    }
    auto join_cost = [&](std::size_t j) {
      return t + 2.0 * m_[j][v] - SizeWithoutV(j, current, wv);
    };
    const double stay = join_cost(current);
    const double moved =
        target == kSingletonTarget ? t : join_cost(target);
    return wv * (moved - stay);
  }

  /// Moves v to `target` (slot index valid *now*, or kSingletonTarget).
  /// Returns the slot v ended up in.
  std::size_t Apply(std::size_t v, std::size_t target) {
    const std::size_t current = assignment_[v];
    if (target == current) return current;
    // One bulk row query serves both M-row updates: under the lazy
    // backend this halves the O(n m) recomputation per applied move.
    instance_.FillRow(v, row_buf_);
    const std::size_t relocated_from = RemoveFromCluster(v, current);
    if (target == kSingletonTarget) {
      sizes_.push_back(0);
      wsizes_.push_back(0.0);
      m_.emplace_back(n_, 0.0);
      target = sizes_.size() - 1;
    } else {
      // RemoveFromCluster may have compacted the last slot into
      // `current`.
      if (target == relocated_from) target = current;
      CLUSTAGG_CHECK(target < sizes_.size());
    }
    AddToCluster(v, target);
    return target;
  }

  Clustering ToClustering() const {
    std::vector<Clustering::Label> labels(n_);
    for (std::size_t v = 0; v < n_; ++v) {
      labels[v] = static_cast<Clustering::Label>(assignment_[v]);
    }
    return Clustering(std::move(labels)).Normalized();
  }

 private:
  /// Weighted size of slot j with object v (of weight wv, sitting in slot
  /// `current`) conceptually removed.
  double SizeWithoutV(std::size_t j, std::size_t current, double wv) const {
    return wsizes_[j] - (j == current ? wv : 0.0);
  }

  /// Removes v from slot c using the distances staged in row_buf_. If c
  /// empties, the last slot is moved into c and its old index is
  /// returned; otherwise returns a sentinel matching no slot.
  std::size_t RemoveFromCluster(std::size_t v, std::size_t c) {
    CLUSTAGG_CHECK(sizes_[c] > 0);
    --sizes_[c];
    const double wv = w_[v];
    std::vector<double>& row = m_[c];
    for (std::size_t u = 0; u < n_; ++u) {
      if (u != v) row[u] -= wv * row_buf_[u];
    }
    std::size_t relocated_from = sizes_.size();
    if (sizes_[c] == 0) {
      // The emptied slot's weighted size is an exact 0: every member's
      // weight was added once and subtracted once, in kind. Resetting it
      // (rather than trusting the residue) keeps that invariant explicit.
      wsizes_[c] = 0.0;
      const std::size_t last = sizes_.size() - 1;
      if (c != last) {
        sizes_[c] = sizes_[last];
        wsizes_[c] = wsizes_[last];
        m_[c] = std::move(m_[last]);
        for (std::size_t u = 0; u < n_; ++u) {
          if (assignment_[u] == last) assignment_[u] = c;
        }
        relocated_from = last;
      }
      sizes_.pop_back();
      wsizes_.pop_back();
      m_.pop_back();
    } else {
      wsizes_[c] -= wv;
    }
    return relocated_from;
  }

  void AddToCluster(std::size_t v, std::size_t c) {
    assignment_[v] = c;
    ++sizes_[c];
    const double wv = w_[v];
    wsizes_[c] += wv;
    std::vector<double>& row = m_[c];
    for (std::size_t u = 0; u < n_; ++u) {
      if (u != v) row[u] += wv * row_buf_[u];
    }
  }

  const CorrelationInstance& instance_;
  std::size_t n_;
  std::vector<std::size_t> assignment_;
  std::vector<std::size_t> sizes_;
  /// Weighted slot sizes sum_{u in slot} w_u; equal to sizes_ (as exact
  /// integer-valued doubles) when the instance is unfolded.
  std::vector<double> wsizes_;
  /// Fold multiplicity of each object (all 1.0 when unfolded).
  std::vector<double> w_;
  // m_[c][v] = M(v, C_c) = sum of w_u-weighted distances from v to the
  // members of C_c.
  std::vector<std::vector<double>> m_;
  // Scratch row of X_v* for the move being applied.
  std::vector<double> row_buf_;
};

}  // namespace clustagg::internal

#endif  // CLUSTAGG_CORE_INTERNAL_MOVE_STATE_H_
