#include "core/furthest.h"

#include <limits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "core/instrumentation.h"

namespace clustagg {

namespace {

/// Assigns every object to the nearest center (ties to the earliest
/// center) and returns the resulting clustering with labels = center
/// ranks. center_rows[c] is the cached distance row of the c-th center,
/// so no backend queries happen here.
Clustering AssignToCenters(
    std::size_t n, const std::vector<std::vector<double>>& center_rows) {
  std::vector<Clustering::Label> labels(n);
  for (std::size_t v = 0; v < n; ++v) {
    std::size_t best = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < center_rows.size(); ++c) {
      const double d = center_rows[c][v];
      if (d < best_dist) {
        best_dist = d;
        best = c;
      }
    }
    labels[v] = static_cast<Clustering::Label>(best);
  }
  return Clustering(std::move(labels));
}

/// The lexicographically-first pair (u, v), u < v, maximizing X_uv.
/// Row-parallel: each row keeps its first-maximizing column, and the rows
/// are combined in ascending u with a strict comparison, reproducing the
/// serial scan whatever the thread count. Sets *completed false (and
/// returns a meaningless pair) when `run` fires mid-scan.
std::pair<std::size_t, std::size_t> FurthestPair(
    const CorrelationInstance& instance, const RunContext& run,
    bool* completed) {
  const std::size_t n = instance.size();
  std::vector<double> row_max(n, -1.0);
  std::vector<std::size_t> row_arg(n, 0);
  const std::size_t threads =
      EffectiveRowThreads(n, ResolveThreadCount(instance.num_threads()));
  std::vector<std::vector<double>> rows(threads, std::vector<double>(n));
  *completed = ParallelForRowsCancellable(
      n, threads, run, [&](std::size_t u, std::size_t tid) {
        if (u + 1 >= n) return;
        std::vector<double>& row = rows[tid];
        instance.FillRow(u, row);
        double best = -1.0;
        std::size_t arg = u + 1;
        for (std::size_t v = u + 1; v < n; ++v) {
          if (row[v] > best) {
            best = row[v];
            arg = v;
          }
        }
        row_max[u] = best;
        row_arg[u] = arg;
      });
  std::size_t c1 = 0;
  std::size_t c2 = 1;
  double max_dist = -1.0;
  for (std::size_t u = 0; u + 1 < n; ++u) {
    if (row_max[u] > max_dist) {
      max_dist = row_max[u];
      c1 = u;
      c2 = row_arg[u];
    }
  }
  return {c1, c2};
}

}  // namespace

Result<ClustererRun> FurthestClusterer::RunControlled(
    const CorrelationInstance& instance, const RunContext& run) const {
  const std::size_t n = instance.size();
  if (n == 0) return ClustererRun{Clustering(), RunOutcome::kConverged};

  const std::size_t max_centers =
      options_.max_centers == 0 ? n
                                : std::min(options_.max_centers, n);

  // k = 1: everything in one cluster. This is the floor the traversal can
  // always fall back to, so even an immediate interrupt returns a valid
  // partition (its cost is then unknown, which is fine — nothing else got
  // scored either).
  Clustering best_clustering = Clustering::SingleCluster(n);
  Result<double> best_cost = instance.Cost(best_clustering, run);
  if (!best_cost.ok()) {
    if (RunContext::IsInterrupt(best_cost.status())) {
      return ClustererRun{std::move(best_clustering),
                          RunContext::OutcomeFromInterrupt(best_cost.status())};
    }
    return best_cost.status();
  }

  if (n == 1 || max_centers < 2) {
    return ClustererRun{std::move(best_clustering), RunOutcome::kConverged};
  }

  // Seed with the furthest pair.
  bool seed_completed = false;
  const auto [c1, c2] = FurthestPair(instance, run, &seed_completed);
  if (!seed_completed) {
    RunOutcome outcome = run.Poll();
    if (outcome == RunOutcome::kConverged) {
      outcome = RunOutcome::kDeadlineExceeded;
    }
    return ClustererRun{std::move(best_clustering), outcome};
  }
  std::vector<std::size_t> centers = {c1, c2};
  // One bulk row query per promoted center; every later pass (assignment,
  // furthest-first updates) reads the cache instead of the backend.
  std::vector<std::vector<double>> center_rows(2, std::vector<double>(n));
  instance.FillRow(c1, center_rows[0]);
  instance.FillRow(c2, center_rows[1]);
  // min distance from each object to the current center set, for the
  // furthest-first traversal.
  std::vector<double> min_dist(n);
  std::vector<bool> is_center(n, false);
  is_center[c1] = is_center[c2] = true;
  for (std::size_t v = 0; v < n; ++v) {
    min_dist[v] = std::min(center_rows[0][v], center_rows[1][v]);
  }

  RunOutcome outcome = RunOutcome::kConverged;
  for (;;) {
    run.ChargeIterations(1);
    if ((outcome = run.Poll()) != RunOutcome::kConverged) break;
    Clustering candidate = AssignToCenters(n, center_rows);
    Result<double> cost = instance.Cost(candidate, run);
    if (!cost.ok()) {
      if (RunContext::IsInterrupt(cost.status())) {
        outcome = RunContext::OutcomeFromInterrupt(cost.status());
        break;  // unscored candidate is discarded; best so far stands
      }
      return cost.status();
    }
    // Convergence sample per traversal step: (centers tried, candidate
    // cost, 1 when the candidate became the new best).
    TelemetryTracePoint(run.telemetry(), "furthest", centers.size(), *cost,
                        *cost < *best_cost ? 1 : 0);
    TelemetryCount(run.telemetry(), "furthest.candidates");
    if (*cost < *best_cost) {
      best_cost = *cost;
      best_clustering = std::move(candidate);
    } else {
      // Adding the last center stopped helping: output the previous
      // (best) solution.
      break;
    }
    if (centers.size() >= max_centers) break;

    // Promote the object furthest from the current centers.
    std::size_t next = n;
    double next_dist = -1.0;
    for (std::size_t v = 0; v < n; ++v) {
      if (is_center[v]) continue;
      if (min_dist[v] > next_dist) {
        next_dist = min_dist[v];
        next = v;
      }
    }
    if (next == n) break;  // every object is a center
    centers.push_back(next);
    is_center[next] = true;
    center_rows.emplace_back(n);
    instance.FillRow(next, center_rows.back());
    const std::vector<double>& next_row = center_rows.back();
    for (std::size_t v = 0; v < n; ++v) {
      min_dist[v] = std::min(min_dist[v], next_row[v]);
    }
  }
  return ClustererRun{best_clustering.Normalized(), outcome};
}

}  // namespace clustagg
