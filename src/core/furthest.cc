#include "core/furthest.h"

#include <limits>
#include <vector>

#include "common/check.h"

namespace clustagg {

namespace {

/// Assigns every object to the nearest center (ties to the earliest
/// center) and returns the resulting clustering with labels = center
/// ranks.
Clustering AssignToCenters(const CorrelationInstance& instance,
                           const std::vector<std::size_t>& centers) {
  const std::size_t n = instance.size();
  std::vector<Clustering::Label> labels(n);
  for (std::size_t v = 0; v < n; ++v) {
    std::size_t best = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < centers.size(); ++c) {
      const double d = instance.distance(v, centers[c]);
      if (d < best_dist) {
        best_dist = d;
        best = c;
      }
    }
    labels[v] = static_cast<Clustering::Label>(best);
  }
  return Clustering(std::move(labels));
}

}  // namespace

Result<Clustering> FurthestClusterer::Run(
    const CorrelationInstance& instance) const {
  const std::size_t n = instance.size();
  if (n == 0) return Clustering();

  const std::size_t max_centers =
      options_.max_centers == 0 ? n
                                : std::min(options_.max_centers, n);

  // k = 1: everything in one cluster.
  Clustering best_clustering = Clustering::SingleCluster(n);
  Result<double> best_cost = instance.Cost(best_clustering);
  CLUSTAGG_CHECK(best_cost.ok());

  if (n == 1 || max_centers < 2) return best_clustering;

  // Seed with the furthest pair.
  std::size_t c1 = 0;
  std::size_t c2 = 1;
  double max_dist = -1.0;
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      const double d = instance.distance(u, v);
      if (d > max_dist) {
        max_dist = d;
        c1 = u;
        c2 = v;
      }
    }
  }
  std::vector<std::size_t> centers = {c1, c2};
  // min distance from each object to the current center set, for the
  // furthest-first traversal.
  std::vector<double> min_dist(n);
  std::vector<bool> is_center(n, false);
  is_center[c1] = is_center[c2] = true;
  for (std::size_t v = 0; v < n; ++v) {
    min_dist[v] =
        std::min(instance.distance(v, c1), instance.distance(v, c2));
  }

  for (;;) {
    Clustering candidate = AssignToCenters(instance, centers);
    Result<double> cost = instance.Cost(candidate);
    CLUSTAGG_CHECK(cost.ok());
    if (*cost < *best_cost) {
      best_cost = *cost;
      best_clustering = std::move(candidate);
    } else {
      // Adding the last center stopped helping: output the previous
      // (best) solution.
      break;
    }
    if (centers.size() >= max_centers) break;

    // Promote the object furthest from the current centers.
    std::size_t next = n;
    double next_dist = -1.0;
    for (std::size_t v = 0; v < n; ++v) {
      if (is_center[v]) continue;
      if (min_dist[v] > next_dist) {
        next_dist = min_dist[v];
        next = v;
      }
    }
    if (next == n) break;  // every object is a center
    centers.push_back(next);
    is_center[next] = true;
    for (std::size_t v = 0; v < n; ++v) {
      min_dist[v] = std::min(min_dist[v], instance.distance(v, next));
    }
  }
  return best_clustering.Normalized();
}

}  // namespace clustagg
