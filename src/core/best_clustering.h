#ifndef CLUSTAGG_CORE_BEST_CLUSTERING_H_
#define CLUSTAGG_CORE_BEST_CLUSTERING_H_

#include <cstddef>

#include "common/run_context.h"
#include "common/status.h"
#include "core/clustering.h"
#include "core/clustering_set.h"

namespace clustagg {

/// Result of the BESTCLUSTERING algorithm.
struct BestClusteringResult {
  /// Index of the winning input clustering.
  std::size_t index = 0;
  /// The winner, made complete (missing labels become fresh singletons)
  /// and normalized.
  Clustering clustering;
  /// Its total (expected) disagreement D(C) with the inputs.
  double total_disagreements = 0.0;
  /// kConverged when every input was scored; otherwise the budget fired
  /// and `clustering` is the best of the inputs scored so far.
  RunOutcome outcome = RunOutcome::kConverged;
};

/// The BESTCLUSTERING algorithm (Section 4): returns the input clustering
/// C_i minimizing the total disagreement D(C_i) with all inputs. By the
/// triangle inequality of d(.,.) this is a 2(1 - 1/m)-approximation to
/// the optimal aggregate — a bound that is tight — but the paper notes it
/// is non-intuitive and rarely good in practice. Inputs with missing
/// labels are completed by turning each missing object into a singleton
/// before being scored as candidates.
///
/// The budgeted overload polls `run` between candidates (the first input
/// is always scored, so the result is always a valid, scored clustering).
Result<BestClusteringResult> BestClustering(
    const ClusteringSet& input, const MissingValueOptions& missing = {});
Result<BestClusteringResult> BestClustering(const ClusteringSet& input,
                                            const MissingValueOptions& missing,
                                            const RunContext& run);

}  // namespace clustagg

#endif  // CLUSTAGG_CORE_BEST_CLUSTERING_H_
