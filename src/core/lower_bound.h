#ifndef CLUSTAGG_CORE_LOWER_BOUND_H_
#define CLUSTAGG_CORE_LOWER_BOUND_H_

#include "common/status.h"
#include "core/clustering_set.h"

namespace clustagg {

/// Per-pair lower bound on the optimal total disagreement D(C*): any
/// partition pays at least m * min(X_uv, 1 - X_uv) for the pair (u, v),
/// because placing the pair together costs the clusterings that split it
/// and apart costs the ones that join it. This is the "Lower bound" row
/// in Tables 2 and 3. O(m n^2).
double DisagreementLowerBound(const ClusteringSet& input,
                              const MissingValueOptions& missing = {});

}  // namespace clustagg

#endif  // CLUSTAGG_CORE_LOWER_BOUND_H_
