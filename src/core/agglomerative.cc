#include "core/agglomerative.h"

#include <utility>

namespace clustagg {

Result<Clustering> AgglomerativeClusterer::Run(
    const CorrelationInstance& instance) const {
  const std::size_t n = instance.size();
  if (n == 0) return Clustering();

  // Widen the packed float matrix to double for the Lance-Williams
  // updates (average-linkage accumulates weighted means).
  SymmetricMatrix<double> working(n);
  {
    const auto& packed = instance.matrix().packed();
    auto& out = working.packed();
    for (std::size_t i = 0; i < packed.size(); ++i) {
      out[i] = static_cast<double>(packed[i]);
    }
  }

  Result<Dendrogram> dendrogram =
      AgglomerateFull(std::move(working), Linkage::kAverage);
  if (!dendrogram.ok()) return dendrogram.status();

  if (options_.target_clusters > 0) {
    Result<Clustering> cut = dendrogram->CutAtK(options_.target_clusters);
    if (!cut.ok()) return cut.status();
    return cut->Normalized();
  }
  return dendrogram->CutAtHeight(options_.merge_threshold).Normalized();
}

}  // namespace clustagg
