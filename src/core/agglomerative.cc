#include "core/agglomerative.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/parallel.h"

namespace clustagg {

Result<ClustererRun> AgglomerativeClusterer::RunControlled(
    const CorrelationInstance& instance, const RunContext& run) const {
  const std::size_t n = instance.size();
  if (n == 0) return ClustererRun{Clustering(), RunOutcome::kConverged};

  // The Lance-Williams updates mutate a double matrix in place
  // (average-linkage accumulates weighted means), so agglomeration is
  // inherently O(n^2) memory whatever the instance backend.
  if (n > 1 &&
      run.SimulateAllocationFailure(n * (n - 1) / 2 * sizeof(double))) {
    return Status::ResourceExhausted(
        "simulated allocation failure for the agglomerative working "
        "matrix (" + std::to_string(n) + " objects)");
  }
  Result<SymmetricMatrix<double>> working_result =
      SymmetricMatrix<double>::Create(n);
  if (!working_result.ok()) return working_result.status();
  SymmetricMatrix<double> working = std::move(working_result).value();
  bool materialized = true;
  if (const SymmetricMatrix<float>* dense = instance.dense_matrix()) {
    // Widen the packed float matrix to double. Cheap (one pass over the
    // triangle), so no polling needed.
    const auto& packed = dense->packed();
    auto& out = working.packed();
    for (std::size_t i = 0; i < packed.size(); ++i) {
      out[i] = static_cast<double>(packed[i]);
    }
  } else {
    // Materialize the lazy rows in parallel; each row of the triangle is
    // a disjoint slice of the packed store. This is the O(n^2 m) part,
    // so it polls.
    auto& out = working.packed();
    const std::size_t threads = EffectiveRowThreads(
        n, ResolveThreadCount(instance.num_threads()));
    std::vector<std::vector<double>> rows(threads, std::vector<double>(n));
    materialized = ParallelForRowsCancellable(
        n, threads, run, [&](std::size_t u, std::size_t tid) {
          if (u + 1 >= n) return;
          std::vector<double>& row = rows[tid];
          instance.FillRow(u, row);
          double* tail = out.data() + working.PackedIndex(u, u + 1);
          for (std::size_t v = u + 1; v < n; ++v) tail[v - u - 1] = row[v];
        });
  }
  if (!materialized) {
    // A half-filled working matrix would merge on garbage distances;
    // the pre-merge state (all singletons) is the valid best-so-far.
    RunOutcome outcome = run.Poll();
    if (outcome == RunOutcome::kConverged) {
      outcome = RunOutcome::kDeadlineExceeded;
    }
    return ClustererRun{Clustering::AllSingletons(n), outcome};
  }

  RunOutcome outcome = RunOutcome::kConverged;
  // Folded instances seed the merge sizes with the fold multiplicities,
  // so average linkage weighs each folded object by the originals it
  // stands for (empty = all singletons of size 1, the unfolded case).
  Result<Dendrogram> dendrogram = AgglomerateFull(
      std::move(working), Linkage::kAverage, instance.multiplicities(), run,
      &outcome);
  if (!dendrogram.ok()) return dendrogram.status();

  if (options_.target_clusters > 0) {
    // On a partial dendrogram the requested k may be unreachable; cut as
    // deep as the performed merges allow.
    const std::size_t min_k =
        dendrogram->num_leaves - dendrogram->merges.size();
    Result<Clustering> cut =
        dendrogram->CutAtK(std::max(options_.target_clusters, min_k));
    if (!cut.ok()) return cut.status();
    return ClustererRun{cut->Normalized(), outcome};
  }
  return ClustererRun{
      dendrogram->CutAtHeight(options_.merge_threshold).Normalized(),
      outcome};
}

}  // namespace clustagg
