#include "core/agglomerative.h"

#include <utility>
#include <vector>

#include "common/parallel.h"

namespace clustagg {

Result<Clustering> AgglomerativeClusterer::Run(
    const CorrelationInstance& instance) const {
  const std::size_t n = instance.size();
  if (n == 0) return Clustering();

  // The Lance-Williams updates mutate a double matrix in place
  // (average-linkage accumulates weighted means), so agglomeration is
  // inherently O(n^2) memory whatever the instance backend.
  Result<SymmetricMatrix<double>> working_result =
      SymmetricMatrix<double>::Create(n);
  if (!working_result.ok()) return working_result.status();
  SymmetricMatrix<double> working = std::move(working_result).value();
  if (const SymmetricMatrix<float>* dense = instance.dense_matrix()) {
    // Widen the packed float matrix to double.
    const auto& packed = dense->packed();
    auto& out = working.packed();
    for (std::size_t i = 0; i < packed.size(); ++i) {
      out[i] = static_cast<double>(packed[i]);
    }
  } else {
    // Materialize the lazy rows in parallel; each row of the triangle is
    // a disjoint slice of the packed store.
    auto& out = working.packed();
    const std::size_t threads = EffectiveRowThreads(
        n, ResolveThreadCount(instance.num_threads()));
    std::vector<std::vector<double>> rows(threads, std::vector<double>(n));
    ParallelForRows(n, threads, [&](std::size_t u, std::size_t tid) {
      if (u + 1 >= n) return;
      std::vector<double>& row = rows[tid];
      instance.FillRow(u, row);
      double* tail = out.data() + working.PackedIndex(u, u + 1);
      for (std::size_t v = u + 1; v < n; ++v) tail[v - u - 1] = row[v];
    });
  }

  Result<Dendrogram> dendrogram =
      AgglomerateFull(std::move(working), Linkage::kAverage);
  if (!dendrogram.ok()) return dendrogram.status();

  if (options_.target_clusters > 0) {
    Result<Clustering> cut = dendrogram->CutAtK(options_.target_clusters);
    if (!cut.ok()) return cut.status();
    return cut->Normalized();
  }
  return dendrogram->CutAtHeight(options_.merge_threshold).Normalized();
}

}  // namespace clustagg
