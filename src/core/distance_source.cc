#include "core/distance_source.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "core/clustering.h"
#include "core/instrumentation.h"
#include "core/internal/packed_labels.h"

namespace clustagg {

namespace internal {

/// Per-object label rows, hoisted once at build time so that distance
/// queries never re-walk Clustering objects or re-resolve the
/// missing-value policy setup per pair. The store is object-major:
/// labels[v * m + i] is the label of object v (in source index space)
/// under input clustering i, so the pair (u, v) compares two contiguous
/// m-length rows — one cache line each for typical m — instead of
/// striding by n across m separate columns.
struct DistanceColumns {
  std::size_t n = 0;
  std::size_t m = 0;
  std::vector<Clustering::Label> labels;
  std::vector<double> weights;
  double total_weight = 0.0;
  MissingValueOptions missing;
  /// True when no object has a missing label under any input clustering
  /// and every input weight is exactly 1.0. Then X_uv reduces to an
  /// integer mismatch count over the two label rows divided by m, which
  /// `ColumnDistance` serves from a branch-free auto-vectorizable loop.
  /// The count path is bit-identical to the general accumulation: sums
  /// of 1.0 are exact integers, opinionated == total_weight exactly, so
  /// the kRandomCoin correction adds exactly 0.0 and both policies
  /// divide the same numerator by the same denominator.
  bool uniform_no_missing = false;
  /// Bit-packed label lanes (see core/internal/packed_labels.h), built
  /// whenever uniform_no_missing holds, every column's alphabet packs
  /// into <= 16-bit lanes, and the active kernel tier enables packing.
  /// The packed mismatch count is the same integer the byte loop
  /// produces, so queries stay bit-identical; nullptr falls back to the
  /// auto-vectorized byte-compare loop.
  std::unique_ptr<PackedLabels> packed;
  /// Hot fields of *packed, flattened so a single point query reads
  /// them straight off this struct (already in cache from the bounds
  /// check) instead of chasing packed -> words/classes — three
  /// dependent loads that would dominate a ~10-op kernel.
  /// packed_words is non-null only for single-word layouts.
  const std::uint64_t* packed_words = nullptr;
  std::uint64_t packed_lsb_mask = 0;
  std::uint32_t packed_width = 0;
  std::uint32_t packed_mul_shift = 0;
  bool packed_mul = false;
  /// packed_value[c] = double(float(double(c) / total_weight)) for
  /// c in [0, m]: the fast path's exact arithmetic precomputed, so the
  /// query path trades the division for an L1 load.
  std::vector<double> packed_value;
};

}  // namespace internal

namespace {

internal::DistanceColumns MakeColumns(const ClusteringSet& input,
                                      const std::vector<std::size_t>* subset,
                                      const MissingValueOptions& missing) {
  internal::DistanceColumns cols;
  cols.n = subset != nullptr ? subset->size() : input.num_objects();
  cols.m = input.num_clusterings();
  cols.missing = missing;
  cols.total_weight = input.total_weight();
  cols.weights.resize(cols.m);
  cols.labels.resize(cols.m * cols.n);
  bool any_missing = false;
  bool uniform = true;
  for (std::size_t i = 0; i < cols.m; ++i) {
    cols.weights[i] = input.weight(i);
    if (cols.weights[i] != 1.0) uniform = false;
    const Clustering& c = input.clustering(i);
    Clustering::Label* out = cols.labels.data() + i;
    for (std::size_t v = 0; v < cols.n; ++v) {
      const Clustering::Label label =
          c.label(subset != nullptr ? (*subset)[v] : v);
      if (label == Clustering::kMissing) any_missing = true;
      out[v * cols.m] = label;
    }
  }
  cols.uniform_no_missing = uniform && !any_missing;
  if (cols.uniform_no_missing &&
      internal::ActivePackedKernelTier() !=
          internal::PackedKernelTier::kPortable) {
    cols.packed =
        internal::PackLabelRows(cols.labels.data(), cols.n, cols.m);
  }
  if (cols.packed != nullptr) {
    cols.packed_value =
        internal::BuildPackedValueLut(cols.m, cols.total_weight);
    if (cols.packed->words_per_object == 1) {
      const internal::PackedClass& cls = cols.packed->classes[0];
      cols.packed_words = cols.packed->words.data();
      cols.packed_lsb_mask = cls.lsb_mask;
      cols.packed_width = cls.width;
      cols.packed_mul_shift = cols.packed->mul_shift;
      cols.packed_mul = cols.packed->mul_count_ok;
    }
  }
  return cols;
}

/// X_uv over the hoisted label rows. The accumulation order (ascending i)
/// and arithmetic match ClusteringSet::PairwiseDistance exactly so both
/// backends (and the legacy serial builder) agree to the last bit; the
/// mismatch-count fast path produces the same bits by the argument on
/// DistanceColumns::uniform_no_missing.
double ColumnDistance(const internal::DistanceColumns& cols, std::size_t u,
                      std::size_t v) {
  if (u == v) return 0.0;
  if (cols.packed_words != nullptr) {
    // Single packed word per object: XOR + lane-collapse + count +
    // LUT — same integer as the byte loop, same (precomputed)
    // division, same bits. All operands live on this struct or in two
    // word loads, so the query carries no pointer chain.
    const std::uint64_t collapsed = internal::CollapseToLaneLsb(
        cols.packed_words[u] ^ cols.packed_words[v], cols.packed_width,
        cols.packed_lsb_mask);
    const std::size_t mismatches =
        cols.packed_mul
            ? (collapsed * cols.packed_lsb_mask) >> cols.packed_mul_shift
            : internal::Popcount64(collapsed);
    return cols.packed_value[mismatches];
  }
  const std::size_t m = cols.m;
  const Clustering::Label* row_u = cols.labels.data() + u * m;
  const Clustering::Label* row_v = cols.labels.data() + v * m;
  if (cols.uniform_no_missing) {
    if (cols.packed != nullptr) {
      // Multi-word packed layout: per-class SWAR count, then the LUT.
      return cols.packed_value[internal::CountMismatchesPacked(
          *cols.packed, u, v)];
    }
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < m; ++i) {
      mismatches += row_u[i] != row_v[i] ? 1 : 0;
    }
    return static_cast<double>(mismatches) / cols.total_weight;
  }
  double disagreeing = 0.0;
  double opinionated = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const Clustering::Label lu = row_u[i];
    const Clustering::Label lv = row_v[i];
    if (lu == Clustering::kMissing || lv == Clustering::kMissing) continue;
    opinionated += cols.weights[i];
    if (lu != lv) disagreeing += cols.weights[i];
  }
  switch (cols.missing.policy) {
    case MissingValuePolicy::kRandomCoin:
      disagreeing += (cols.total_weight - opinionated) *
                     (1.0 - cols.missing.coin_together_probability);
      return disagreeing / cols.total_weight;
    case MissingValuePolicy::kIgnore:
      if (opinionated == 0.0) return 0.5;
      return disagreeing / opinionated;
  }
  CLUSTAGG_CHECK(false);
  return 0.0;
}

Result<std::shared_ptr<const DenseDistanceSource>> BuildDenseFromColumns(
    const internal::DistanceColumns& cols, std::size_t num_threads,
    const RunContext& run) {
  if (cols.n > 1 && run.SimulateAllocationFailure(cols.n * (cols.n - 1) / 2 *
                                                  sizeof(float))) {
    return Status::ResourceExhausted(
        "simulated allocation failure for the dense distance matrix (" +
        std::to_string(cols.n) + " objects)");
  }
  Result<SymmetricMatrix<float>> matrix =
      SymmetricMatrix<float>::Create(cols.n);
  if (!matrix.ok()) return matrix.status();
  SymmetricMatrix<float> distances = std::move(matrix).value();
  const std::size_t n = cols.n;
  std::vector<float>& packed = distances.packed();
  const std::size_t threads =
      EffectiveRowThreads(n, ResolveThreadCount(num_threads));
  TelemetryCount(run.telemetry(), "build.dense_builds");
  TelemetrySetGauge(run.telemetry(), "build.dense_threads",
                    static_cast<std::int64_t>(threads));
  InstrumentedTimer build_timer(run.telemetry(), "build.dense_nanos");
  // Cache-blocked fill: the triangle is carved into row bands, and each
  // band sweeps its columns in kTileCols-wide tiles so the tile's label
  // rows (kTileCols * m labels) stay cache-resident while every row of
  // the band visits them. Bands are disjoint contiguous slices of the
  // packed store, so every thread writes its own memory and the result is
  // schedule-independent regardless of how bands land on threads. Each
  // band charges its row count against the iteration budget (the loop
  // helper charges one unit per band; the top-up below restores per-row
  // accounting). A half-filled matrix is unusable, so when the budget
  // fires mid-fill the build fails with the interrupt status rather than
  // returning garbage.
  constexpr std::size_t kTileRows = 64;
  constexpr std::size_t kTileCols = 256;
  // Cost-weighted bands: row u owns n - u - 1 pairs, so fixed-height
  // bands at the top of the triangle carry up to twice the average work
  // and a chunk of consecutive heavy bands claimed by one thread becomes
  // the straggler that flattens thread scaling. Bands here grow until
  // they hold ~kTileRows * n / 2 pairs (an average fixed band's mass) or
  // hit the kTileRows cache-tile height, so every claimed chunk carries
  // near-equal work: heavy top rows get short bands, light bottom rows
  // fill to the tile height. Boundaries depend only on n — never on the
  // thread count — so the fill and its exact per-row iteration
  // accounting stay schedule-independent.
  std::vector<std::size_t> band_start;
  band_start.reserve(n / (kTileRows / 2) + 2);
  const std::uint64_t target_pairs =
      static_cast<std::uint64_t>(kTileRows) * static_cast<std::uint64_t>(n) /
      2;
  for (std::size_t u0 = 0; u0 < n;) {
    band_start.push_back(u0);
    std::uint64_t mass = 0;
    std::size_t u1 = u0;
    while (u1 < n && u1 - u0 < kTileRows) {
      mass += static_cast<std::uint64_t>(n - u1 - 1);
      ++u1;
      if (mass >= target_pairs) break;
    }
    u0 = u1;
  }
  band_start.push_back(n);
  const std::size_t num_bands = band_start.size() - 1;
  const bool completed = ParallelForRowsCancellable(
      num_bands, threads, run, [&](std::size_t band, std::size_t) {
        const std::size_t u0 = band_start[band];
        const std::size_t u1 = band_start[band + 1];
        if (u1 - u0 > 1) run.ChargeIterations(u1 - u0 - 1);
        if (cols.packed != nullptr) {
          // Packed rows are a word or two per object — the whole packed
          // store usually fits in L1 — so no column tiling is needed:
          // each matrix row's tail [u+1, n) is filled in one contiguous
          // sweep by the SWAR/AVX2 row kernel (which prefetches the
          // v-words ahead of itself). Values are bit-identical to the
          // byte-loop tile fill below.
          for (std::size_t u = u0; u < u1; ++u) {
            if (u + 1 >= n) continue;
            internal::PackedMismatchRowFloat(
                *cols.packed, u, u + 1, n, cols.total_weight,
                cols.packed_value.data(),
                packed.data() + distances.PackedIndex(u, u + 1));
          }
          return;
        }
        for (std::size_t c0 = u0 + 1; c0 < n; c0 += kTileCols) {
          const std::size_t c1 = std::min(n, c0 + kTileCols);
          for (std::size_t u = u0; u < u1; ++u) {
            const std::size_t v0 = std::max(c0, u + 1);
            if (v0 >= c1) continue;
            float* row = packed.data() + distances.PackedIndex(u, v0);
            for (std::size_t v = v0; v < c1; ++v) {
              row[v - v0] = static_cast<float>(ColumnDistance(cols, u, v));
            }
          }
        }
      });
  if (!completed) {
    const RunOutcome outcome = run.Poll();
    return outcome == RunOutcome::kConverged
               ? Status::DeadlineExceeded("dense build interrupted")
               : run.StopStatus(outcome);
  }
  return std::make_shared<const DenseDistanceSource>(std::move(distances));
}

}  // namespace

const char* DistanceBackendName(DistanceBackend backend) {
  switch (backend) {
    case DistanceBackend::kDense:
      return "dense";
    case DistanceBackend::kLazy:
      return "lazy";
  }
  CLUSTAGG_CHECK(false);
  return "unknown";
}

void DistanceSource::FillRow(std::size_t u, std::span<double> row) const {
  const std::size_t n = size();
  CLUSTAGG_CHECK(u < n && row.size() >= n);
  for (std::size_t v = 0; v < n; ++v) row[v] = distance(u, v);
}

void DistanceSource::AgreementRow(std::size_t u,
                                  std::span<char> agree) const {
  const std::size_t n = size();
  CLUSTAGG_CHECK(u < n && agree.size() >= n);
  for (std::size_t v = 0; v < n; ++v) {
    agree[v] = distance(u, v) < 0.5 ? 1 : 0;
  }
}

Result<std::shared_ptr<const DenseDistanceSource>> DenseDistanceSource::Build(
    const ClusteringSet& input, const MissingValueOptions& missing,
    std::size_t num_threads, const RunContext& run) {
  return BuildDenseFromColumns(MakeColumns(input, nullptr, missing),
                               num_threads, run);
}

Result<std::shared_ptr<const DenseDistanceSource>>
DenseDistanceSource::BuildSubset(const ClusteringSet& input,
                                 const std::vector<std::size_t>& subset,
                                 const MissingValueOptions& missing,
                                 std::size_t num_threads,
                                 const RunContext& run) {
  for (std::size_t v : subset) CLUSTAGG_CHECK(v < input.num_objects());
  return BuildDenseFromColumns(MakeColumns(input, &subset, missing),
                               num_threads, run);
}

void DenseDistanceSource::FillRow(std::size_t u, std::span<double> row) const {
  const std::size_t n = distances_.size();
  CLUSTAGG_CHECK(u < n && row.size() >= n);
  if (u > 0) {
    // Column u of the strict upper triangle: entry (v, u) sits at packed
    // offset PackedIndex(v, u), and stepping v -> v+1 shrinks row v's
    // remaining tail by one, so consecutive entries are n - v - 2 apart.
    // Walking by that stride replaces a packed-index multiply per element
    // with one addition.
    const float* packed = distances_.packed().data();
    std::size_t idx = u - 1;  // PackedIndex(0, u)
    for (std::size_t v = 0; v + 1 < u; ++v) {
      row[v] = packed[idx];
      idx += n - v - 2;
    }
    row[u - 1] = packed[idx];
  }
  row[u] = 0.0;
  if (u + 1 < n) {
    const float* tail =
        distances_.packed().data() + distances_.PackedIndex(u, u + 1);
    for (std::size_t v = u + 1; v < n; ++v) row[v] = tail[v - u - 1];
  }
}

void DenseDistanceSource::AgreementRow(std::size_t u,
                                       std::span<char> agree) const {
  const std::size_t n = distances_.size();
  CLUSTAGG_CHECK(u < n && agree.size() >= n);
  // Same strided column walk as FillRow, comparing in float (identical
  // to comparing the widened double against 0.5).
  if (u > 0) {
    const float* packed = distances_.packed().data();
    std::size_t idx = u - 1;  // PackedIndex(0, u)
    for (std::size_t v = 0; v + 1 < u; ++v) {
      agree[v] = packed[idx] < 0.5f ? 1 : 0;
      idx += n - v - 2;
    }
    agree[u - 1] = packed[idx] < 0.5f ? 1 : 0;
  }
  agree[u] = 1;
  if (u + 1 < n) {
    const float* tail =
        distances_.packed().data() + distances_.PackedIndex(u, u + 1);
    for (std::size_t v = u + 1; v < n; ++v) {
      agree[v] = tail[v - u - 1] < 0.5f ? 1 : 0;
    }
  }
}

LazyDistanceSource::LazyDistanceSource(
    std::unique_ptr<internal::DistanceColumns> columns)
    : columns_(std::move(columns)) {}

LazyDistanceSource::~LazyDistanceSource() = default;

Result<std::shared_ptr<const LazyDistanceSource>> LazyDistanceSource::Build(
    const ClusteringSet& input, const MissingValueOptions& missing) {
  return std::shared_ptr<const LazyDistanceSource>(
      new LazyDistanceSource(std::make_unique<internal::DistanceColumns>(
          MakeColumns(input, nullptr, missing))));
}

Result<std::shared_ptr<const LazyDistanceSource>>
LazyDistanceSource::BuildSubset(const ClusteringSet& input,
                                const std::vector<std::size_t>& subset,
                                const MissingValueOptions& missing) {
  for (std::size_t v : subset) CLUSTAGG_CHECK(v < input.num_objects());
  return std::shared_ptr<const LazyDistanceSource>(
      new LazyDistanceSource(std::make_unique<internal::DistanceColumns>(
          MakeColumns(input, &subset, missing))));
}

std::size_t LazyDistanceSource::size() const { return columns_->n; }

double LazyDistanceSource::distance(std::size_t u, std::size_t v) const {
  CLUSTAGG_CHECK(u < columns_->n && v < columns_->n);
  // Round through float so dense and lazy answers are bit-identical.
  return static_cast<float>(ColumnDistance(*columns_, u, v));
}

void LazyDistanceSource::FillRow(std::size_t u, std::span<double> row) const {
  const internal::DistanceColumns& cols = *columns_;
  const std::size_t n = cols.n;
  CLUSTAGG_CHECK(u < n && row.size() >= n);
  if (cols.packed != nullptr) {
    // Bulk packed fill (X_uu comes out exactly 0.0: zero mismatches).
    internal::PackedMismatchRowDouble(*cols.packed, u, 0, n,
                                      cols.total_weight,
                                      cols.packed_value.data(), row.data());
    return;
  }
  for (std::size_t v = 0; v < n; ++v) {
    row[v] = static_cast<float>(ColumnDistance(cols, u, v));
  }
}

void LazyDistanceSource::AgreementRow(std::size_t u,
                                      std::span<char> agree) const {
  const internal::DistanceColumns& cols = *columns_;
  const std::size_t n = cols.n;
  CLUSTAGG_CHECK(u < n && agree.size() >= n);
  if (cols.packed != nullptr) {
    // Integer threshold per pair (2 * mismatches < m) — no float
    // materialization at all; equivalent to the rounded compare for any
    // m below ~2^24 (see PackedAgreementRow).
    internal::PackedAgreementRow(*cols.packed, u, 0, n, agree.data());
    return;
  }
  for (std::size_t v = 0; v < n; ++v) {
    agree[v] = static_cast<float>(ColumnDistance(cols, u, v)) < 0.5f ? 1 : 0;
  }
}

bool LazyDistanceSource::uses_packed_labels() const {
  return columns_->packed != nullptr;
}

Result<std::shared_ptr<const DistanceSource>> BuildDistanceSource(
    const ClusteringSet& input, const MissingValueOptions& missing,
    const DistanceSourceOptions& options) {
  switch (options.backend) {
    case DistanceBackend::kDense: {
      Result<std::shared_ptr<const DenseDistanceSource>> dense =
          DenseDistanceSource::Build(input, missing, options.num_threads,
                                     options.run);
      if (!dense.ok()) return dense.status();
      return std::shared_ptr<const DistanceSource>(std::move(dense).value());
    }
    case DistanceBackend::kLazy: {
      Result<std::shared_ptr<const LazyDistanceSource>> lazy =
          LazyDistanceSource::Build(input, missing);
      if (!lazy.ok()) return lazy.status();
      TelemetryCount(options.run.telemetry(), "build.lazy_builds");
      return std::shared_ptr<const DistanceSource>(std::move(lazy).value());
    }
  }
  return Status::Internal("unknown distance backend");
}

Result<std::shared_ptr<const DistanceSource>> BuildDistanceSourceSubset(
    const ClusteringSet& input, const std::vector<std::size_t>& subset,
    const MissingValueOptions& missing, const DistanceSourceOptions& options) {
  switch (options.backend) {
    case DistanceBackend::kDense: {
      Result<std::shared_ptr<const DenseDistanceSource>> dense =
          DenseDistanceSource::BuildSubset(input, subset, missing,
                                           options.num_threads, options.run);
      if (!dense.ok()) return dense.status();
      return std::shared_ptr<const DistanceSource>(std::move(dense).value());
    }
    case DistanceBackend::kLazy: {
      Result<std::shared_ptr<const LazyDistanceSource>> lazy =
          LazyDistanceSource::BuildSubset(input, subset, missing);
      if (!lazy.ok()) return lazy.status();
      TelemetryCount(options.run.telemetry(), "build.lazy_builds");
      return std::shared_ptr<const DistanceSource>(std::move(lazy).value());
    }
  }
  return Status::Internal("unknown distance backend");
}

}  // namespace clustagg
