#ifndef CLUSTAGG_CORE_DISTANCE_SOURCE_H_
#define CLUSTAGG_CORE_DISTANCE_SOURCE_H_

#include <cstddef>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/run_context.h"
#include "common/status.h"
#include "common/symmetric_matrix.h"
#include "core/clustering_set.h"

namespace clustagg {

namespace internal {
struct DistanceColumns;
}  // namespace internal

/// Which representation backs the pairwise distances X_uv of a
/// correlation-clustering instance.
enum class DistanceBackend {
  /// Packed O(n^2/2) float matrix, built once (in parallel) and then
  /// answering every query in O(1). The right choice whenever it fits in
  /// memory: every algorithm makes many passes over the same pairs.
  kDense,
  /// O(n*m) label columns; every query recomputes X_uv from the m input
  /// clusterings in O(m). Removes the quadratic memory floor, so full
  /// (non-sampled) runs become possible at n = 50K+ where a dense matrix
  /// would need gigabytes.
  kLazy,
};

/// Stable lowercase name ("dense" / "lazy") for CLI flags and reports.
const char* DistanceBackendName(DistanceBackend backend);

/// Knobs shared by every distance-source builder.
struct DistanceSourceOptions {
  DistanceBackend backend = DistanceBackend::kDense;
  /// Threads for parallel construction and for the parallel reductions of
  /// the owning instance. 0 means one per hardware core.
  std::size_t num_threads = 0;
  /// Budget for the O(m n^2) dense build: the parallel fill polls this
  /// and, when it fires, construction aborts with a Cancelled /
  /// DeadlineExceeded status (a half-built matrix is useless). Also
  /// carries the fault-injection hooks that can force the allocation to
  /// "fail" in tests. Default: unlimited.
  RunContext run;
};

/// Query access to the pairwise distances X_uv in [0, 1] of a
/// correlation-clustering instance (Problem 2). Algorithms only ever need
/// this interface — not a materialized matrix — which is what lets the
/// dense and lazy backends be swapped freely.
///
/// Implementations must be deep-const: `distance` and `FillRow` are called
/// concurrently from row-parallel loops.
class DistanceSource {
 public:
  virtual ~DistanceSource() = default;

  /// Number of objects n.
  virtual std::size_t size() const = 0;

  /// X_uv (0 when u == v).
  virtual double distance(std::size_t u, std::size_t v) const = 0;

  /// Bulk query: writes X_uv into row[v] for every v in [0, n). row must
  /// have at least n entries. Backends override this with batched
  /// implementations; the default loops over `distance`.
  virtual void FillRow(std::size_t u, std::span<double> row) const;

  /// Bulk threshold query for the agreement-graph consumers (shard
  /// decompose): agree[v] != 0 iff X_uv < 1/2, for every v in [0, n)
  /// (u itself agrees with itself). Exactly equivalent to comparing
  /// FillRow output against 0.5, but backends can answer it without
  /// materializing distances — the lazy backend's packed kernel decides
  /// it with an integer compare per pair. The default loops `distance`.
  virtual void AgreementRow(std::size_t u, std::span<char> agree) const;

  /// The packed matrix when this source is dense, nullptr otherwise.
  /// Consumers with a tight inner loop (local search, agglomerative
  /// merging) use this to devirtualize the hot path.
  virtual const SymmetricMatrix<float>* dense_matrix() const {
    return nullptr;
  }

  /// Stable backend name for reports ("dense" / "lazy").
  virtual const char* name() const = 0;
};

/// Dense backend: the packed symmetric float matrix. X values derived
/// from m clusterings are multiples of 1/m (m small), so float is ample,
/// and the Mushrooms-scale instance (n = 8124) fits in ~130 MB.
/// Construction partitions rows of the triangle across threads.
class DenseDistanceSource final : public DistanceSource {
 public:
  /// Wraps an existing matrix (entries assumed validated by the caller).
  explicit DenseDistanceSource(SymmetricMatrix<float> distances)
      : distances_(std::move(distances)) {}

  /// Builds the matrix summarizing a set of input clusterings:
  /// X_uv = (expected) fraction of clusterings separating u and v under
  /// the missing-value policy. O(m n^2 / threads) time; fails with
  /// ResourceExhausted when the packed triangle cannot be allocated (or
  /// when `run`'s fault hooks say it should), and with Cancelled /
  /// DeadlineExceeded when `run` fires mid-fill.
  static Result<std::shared_ptr<const DenseDistanceSource>> Build(
      const ClusteringSet& input, const MissingValueOptions& missing = {},
      std::size_t num_threads = 0, const RunContext& run = RunContext());

  /// Same, restricted to the given objects: object i of the source is
  /// subset[i]. Used by the SAMPLING algorithm.
  static Result<std::shared_ptr<const DenseDistanceSource>> BuildSubset(
      const ClusteringSet& input, const std::vector<std::size_t>& subset,
      const MissingValueOptions& missing = {}, std::size_t num_threads = 0,
      const RunContext& run = RunContext());

  std::size_t size() const override { return distances_.size(); }
  double distance(std::size_t u, std::size_t v) const override {
    return distances_(u, v);
  }
  void FillRow(std::size_t u, std::span<double> row) const override;
  void AgreementRow(std::size_t u, std::span<char> agree) const override;
  const SymmetricMatrix<float>* dense_matrix() const override {
    return &distances_;
  }
  const char* name() const override { return "dense"; }

 private:
  SymmetricMatrix<float> distances_;
};

/// Lazy backend: keeps only the per-clustering label columns (O(n*m)) and
/// recomputes X_uv on demand, honoring both missing-value policies. Every
/// query rounds through float exactly like the dense matrix does, so both
/// backends return bit-identical distances.
class LazyDistanceSource final : public DistanceSource {
 public:
  ~LazyDistanceSource() override;

  static Result<std::shared_ptr<const LazyDistanceSource>> Build(
      const ClusteringSet& input, const MissingValueOptions& missing = {});

  static Result<std::shared_ptr<const LazyDistanceSource>> BuildSubset(
      const ClusteringSet& input, const std::vector<std::size_t>& subset,
      const MissingValueOptions& missing = {});

  std::size_t size() const override;
  double distance(std::size_t u, std::size_t v) const override;
  void FillRow(std::size_t u, std::span<double> row) const override;
  void AgreementRow(std::size_t u, std::span<char> agree) const override;
  const char* name() const override { return "lazy"; }

  /// True when this source carries the bit-packed label representation
  /// (plain instance, packable alphabets, packing tier active).
  /// Introspection for tests and benches; queries answer bit-identically
  /// either way.
  bool uses_packed_labels() const;

 private:
  explicit LazyDistanceSource(
      std::unique_ptr<internal::DistanceColumns> columns);

  std::unique_ptr<internal::DistanceColumns> columns_;
};

/// Backend-dispatching builders: the one entry point most callers want.
Result<std::shared_ptr<const DistanceSource>> BuildDistanceSource(
    const ClusteringSet& input, const MissingValueOptions& missing = {},
    const DistanceSourceOptions& options = {});

Result<std::shared_ptr<const DistanceSource>> BuildDistanceSourceSubset(
    const ClusteringSet& input, const std::vector<std::size_t>& subset,
    const MissingValueOptions& missing = {},
    const DistanceSourceOptions& options = {});

}  // namespace clustagg

#endif  // CLUSTAGG_CORE_DISTANCE_SOURCE_H_
