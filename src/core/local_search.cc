#include "core/local_search.h"

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/instrumentation.h"
#include "core/internal/move_state.h"

namespace clustagg {

Result<ClustererRun> LocalSearchClusterer::RunControlled(
    const CorrelationInstance& instance, const RunContext& run) const {
  const std::size_t n = instance.size();
  Clustering initial;
  switch (options_.init) {
    case LocalSearchOptions::Init::kSingletons:
      initial = Clustering::AllSingletons(n);
      break;
    case LocalSearchOptions::Init::kSingleCluster:
      initial = Clustering::SingleCluster(n);
      break;
    case LocalSearchOptions::Init::kRandom: {
      std::size_t k = options_.random_clusters;
      if (k == 0) {
        k = std::max<std::size_t>(
            2, static_cast<std::size_t>(std::llround(std::sqrt(
                   static_cast<double>(n)))));
      }
      Rng rng(options_.seed);
      std::vector<Clustering::Label> labels(n);
      for (std::size_t v = 0; v < n; ++v) {
        labels[v] = static_cast<Clustering::Label>(rng.NextBounded(k));
      }
      initial = Clustering(std::move(labels));
      break;
    }
  }
  return RunFromControlled(instance, initial, run);
}

Result<Clustering> LocalSearchClusterer::RunFrom(
    const CorrelationInstance& instance, const Clustering& initial) const {
  Result<ClustererRun> run =
      RunFromControlled(instance, initial, RunContext());
  if (!run.ok()) return run.status();
  return std::move(run->clustering);
}

Result<ClustererRun> LocalSearchClusterer::RunFromControlled(
    const CorrelationInstance& instance, const Clustering& initial,
    const RunContext& run) const {
  const std::size_t n = instance.size();
  if (initial.size() != n) {
    return Status::InvalidArgument(
        "initial clustering covers " + std::to_string(initial.size()) +
        " objects, expected " + std::to_string(n));
  }
  if (initial.HasMissing()) {
    return Status::InvalidArgument(
        "local search requires a complete starting clustering");
  }
  if (n == 0) return ClustererRun{Clustering(), RunOutcome::kConverged};

  bool state_built = false;
  internal::MoveState state(instance, initial, run, &state_built);
  if (!state_built) {
    // The M table is partial and unusable; the starting partition is the
    // best valid answer available.
    RunOutcome outcome = run.Poll();
    if (outcome == RunOutcome::kConverged) {
      outcome = RunOutcome::kDeadlineExceeded;
    }
    return ClustererRun{initial.Normalized(), outcome};
  }
  Rng rng(options_.seed);
  std::vector<std::size_t> order(n);
  for (std::size_t v = 0; v < n; ++v) order[v] = v;

  Telemetry* telemetry = run.telemetry();
  RunOutcome outcome = RunOutcome::kConverged;
  double cumulative_improvement = 0.0;
  for (std::size_t pass = 0; pass < options_.max_passes; ++pass) {
    if ((outcome = run.Poll()) != RunOutcome::kConverged) break;
    if (options_.shuffle_order) order = rng.Permutation(n);
    std::size_t moves_this_pass = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (i % 64 == 63) {
        run.ChargeIterations(64);
        if ((outcome = run.Poll()) != RunOutcome::kConverged) break;
      }
      if (state.TryImproveBest(order[i], options_.min_improvement,
                               &cumulative_improvement,
                               options_.max_cluster_size)) {
        ++moves_this_pass;
      }
    }
    // The block charge above only fires at i % 64 == 63, so a pass whose
    // n is not a multiple of 64 still owes its tail objects. Charging
    // them here keeps the deterministic budget an exact per-object count
    // (n per completed pass).
    if (outcome == RunOutcome::kConverged && n % 64 != 0) {
      run.ChargeIterations(n % 64);
    }
    // Convergence sample per pass: cumulative cost decrease since the
    // starting partition, plus how many objects moved this pass.
    TelemetryTracePoint(telemetry, "localsearch", pass,
                        cumulative_improvement, moves_this_pass);
    TelemetryCount(telemetry, "localsearch.passes");
    TelemetryCount(telemetry, "localsearch.moves", moves_this_pass);
    if (outcome != RunOutcome::kConverged) break;
    if (moves_this_pass == 0) break;
  }
  // Every applied move lowered the cost, so the state is valid and at
  // least as good as `initial` wherever the sweep stopped.
  return ClustererRun{state.ToClustering(), outcome};
}

}  // namespace clustagg
