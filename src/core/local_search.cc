#include "core/local_search.h"

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/internal/move_state.h"

namespace clustagg {

Result<Clustering> LocalSearchClusterer::Run(
    const CorrelationInstance& instance) const {
  const std::size_t n = instance.size();
  Clustering initial;
  switch (options_.init) {
    case LocalSearchOptions::Init::kSingletons:
      initial = Clustering::AllSingletons(n);
      break;
    case LocalSearchOptions::Init::kSingleCluster:
      initial = Clustering::SingleCluster(n);
      break;
    case LocalSearchOptions::Init::kRandom: {
      std::size_t k = options_.random_clusters;
      if (k == 0) {
        k = std::max<std::size_t>(
            2, static_cast<std::size_t>(std::llround(std::sqrt(
                   static_cast<double>(n)))));
      }
      Rng rng(options_.seed);
      std::vector<Clustering::Label> labels(n);
      for (std::size_t v = 0; v < n; ++v) {
        labels[v] = static_cast<Clustering::Label>(rng.NextBounded(k));
      }
      initial = Clustering(std::move(labels));
      break;
    }
  }
  return RunFrom(instance, initial);
}

Result<Clustering> LocalSearchClusterer::RunFrom(
    const CorrelationInstance& instance, const Clustering& initial) const {
  const std::size_t n = instance.size();
  if (initial.size() != n) {
    return Status::InvalidArgument(
        "initial clustering covers " + std::to_string(initial.size()) +
        " objects, expected " + std::to_string(n));
  }
  if (initial.HasMissing()) {
    return Status::InvalidArgument(
        "local search requires a complete starting clustering");
  }
  if (n == 0) return Clustering();

  internal::MoveState state(instance, initial);
  Rng rng(options_.seed);
  std::vector<std::size_t> order(n);
  for (std::size_t v = 0; v < n; ++v) order[v] = v;

  for (std::size_t pass = 0; pass < options_.max_passes; ++pass) {
    if (options_.shuffle_order) order = rng.Permutation(n);
    bool any_move = false;
    for (std::size_t v : order) {
      any_move |= state.TryImproveBest(v, options_.min_improvement);
    }
    if (!any_move) break;
  }
  return state.ToClustering();
}

}  // namespace clustagg
