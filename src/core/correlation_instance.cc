#include "core/correlation_instance.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace clustagg {

Result<CorrelationInstance> CorrelationInstance::FromDistances(
    SymmetricMatrix<float> distances) {
  for (float x : distances.packed()) {
    if (!(x >= 0.0f && x <= 1.0f)) {
      return Status::InvalidArgument(
          "correlation distances must lie in [0, 1], got " +
          std::to_string(x));
    }
  }
  return CorrelationInstance(std::move(distances));
}

CorrelationInstance CorrelationInstance::FromClusterings(
    const ClusteringSet& input, const MissingValueOptions& missing) {
  const std::size_t n = input.num_objects();
  SymmetricMatrix<float> distances(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      distances.Set(u, v,
                    static_cast<float>(input.PairwiseDistance(u, v, missing)));
    }
  }
  return CorrelationInstance(std::move(distances));
}

CorrelationInstance CorrelationInstance::FromClusteringsSubset(
    const ClusteringSet& input, const std::vector<std::size_t>& subset,
    const MissingValueOptions& missing) {
  const std::size_t n = subset.size();
  SymmetricMatrix<float> distances(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      distances.Set(
          i, j,
          static_cast<float>(
              input.PairwiseDistance(subset[i], subset[j], missing)));
    }
  }
  return CorrelationInstance(std::move(distances));
}

Result<double> CorrelationInstance::Cost(const Clustering& candidate) const {
  const std::size_t n = size();
  if (candidate.size() != n) {
    return Status::InvalidArgument(
        "candidate clustering covers " + std::to_string(candidate.size()) +
        " objects, expected " + std::to_string(n));
  }
  if (candidate.HasMissing()) {
    return Status::InvalidArgument(
        "candidate clustering must be complete (no missing labels)");
  }
  double cost = 0.0;
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      const double x = distances_(u, v);
      cost += candidate.label(u) == candidate.label(v) ? x : 1.0 - x;
    }
  }
  return cost;
}

double CorrelationInstance::LowerBound() const {
  double bound = 0.0;
  for (float x : distances_.packed()) {
    bound += std::min<double>(x, 1.0 - static_cast<double>(x));
  }
  return bound;
}

std::vector<double> CorrelationInstance::TotalIncidentWeights() const {
  const std::size_t n = size();
  std::vector<double> weights(n, 0.0);
  std::size_t idx = 0;
  const std::vector<float>& packed = distances_.packed();
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      const double x = packed[idx++];
      weights[u] += x;
      weights[v] += x;
    }
  }
  return weights;
}

bool CorrelationInstance::SatisfiesTriangleInequality(
    double tolerance) const {
  const std::size_t n = size();
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = 0; v < n; ++v) {
      if (v == u) continue;
      for (std::size_t w = u + 1; w < n; ++w) {
        if (w == v) continue;
        if (distances_(u, w) >
            distances_(u, v) + distances_(v, w) + tolerance) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace clustagg
