#include "core/correlation_instance.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/check.h"
#include "common/parallel.h"
#include "core/instrumentation.h"

namespace clustagg {

namespace {

/// Threads worth spawning for this instance's row-parallel reductions.
std::size_t ReductionThreads(std::size_t rows, std::size_t requested) {
  return EffectiveRowThreads(rows, ResolveThreadCount(requested));
}

/// Scratch rows, one per thread, for backends without O(1) row access.
std::vector<std::vector<double>> ThreadRows(std::size_t threads,
                                            std::size_t n) {
  return std::vector<std::vector<double>>(threads, std::vector<double>(n));
}

/// The interrupt status after ParallelForRowsCancellable returned false.
Status InterruptStatus(const RunContext& run) {
  const RunOutcome outcome = run.Poll();
  return outcome == RunOutcome::kConverged
             ? Status::DeadlineExceeded("run interrupted")
             : run.StopStatus(outcome);
}

}  // namespace

Result<CorrelationInstance> CorrelationInstance::FromDistances(
    SymmetricMatrix<float> distances) {
  for (float x : distances.packed()) {
    if (!(x >= 0.0f && x <= 1.0f)) {
      return Status::InvalidArgument(
          "correlation distances must lie in [0, 1], got " +
          std::to_string(x));
    }
  }
  return FromSource(
      std::make_shared<const DenseDistanceSource>(std::move(distances)));
}

Result<CorrelationInstance> CorrelationInstance::Build(
    const ClusteringSet& input, const MissingValueOptions& missing,
    const DistanceSourceOptions& options) {
  Result<std::shared_ptr<const DistanceSource>> source =
      BuildDistanceSource(input, missing, options);
  if (!source.ok()) return source.status();
  return CorrelationInstance(std::move(source).value(), options.num_threads);
}

Result<CorrelationInstance> CorrelationInstance::BuildSubset(
    const ClusteringSet& input, const std::vector<std::size_t>& subset,
    const MissingValueOptions& missing, const DistanceSourceOptions& options) {
  Result<std::shared_ptr<const DistanceSource>> source =
      BuildDistanceSourceSubset(input, subset, missing, options);
  if (!source.ok()) return source.status();
  return CorrelationInstance(std::move(source).value(), options.num_threads);
}

CorrelationInstance CorrelationInstance::FromSource(
    std::shared_ptr<const DistanceSource> source, std::size_t num_threads,
    std::vector<double> multiplicities) {
  if (!multiplicities.empty() && source != nullptr) {
    CLUSTAGG_CHECK(multiplicities.size() == source->size());
  }
  return CorrelationInstance(std::move(source), num_threads,
                             std::move(multiplicities));
}

CorrelationInstance CorrelationInstance::FromClusterings(
    const ClusteringSet& input, const MissingValueOptions& missing) {
  Result<CorrelationInstance> instance = Build(input, missing);
  CLUSTAGG_CHECK_OK(instance.status());
  return std::move(instance).value();
}

CorrelationInstance CorrelationInstance::FromClusteringsSubset(
    const ClusteringSet& input, const std::vector<std::size_t>& subset,
    const MissingValueOptions& missing) {
  Result<CorrelationInstance> instance = BuildSubset(input, subset, missing);
  CLUSTAGG_CHECK_OK(instance.status());
  return std::move(instance).value();
}

Result<double> CorrelationInstance::Cost(const Clustering& candidate,
                                         const RunContext& run) const {
  const std::size_t n = size();
  if (candidate.size() != n) {
    return Status::InvalidArgument(
        "candidate clustering covers " + std::to_string(candidate.size()) +
        " objects, expected " + std::to_string(n));
  }
  if (candidate.HasMissing()) {
    return Status::InvalidArgument(
        "candidate clustering must be complete (no missing labels)");
  }
  if (n == 0) return 0.0;
  TelemetryCount(run.telemetry(), "instance.cost_evals");

  // Each row's pairs (u, v > u) are summed sequentially in ascending v
  // into row_cost[u]; the rows are then reduced in ascending u. Both
  // orders are fixed, so the result is bit-identical for every thread
  // count and backend. Folded instances weight pair (u, v) by
  // mult[u] * mult[v]: each folded pair stands for that many original
  // pairs at the same distance.
  const double* mult =
      multiplicities_.empty() ? nullptr : multiplicities_.data();
  std::vector<double> row_cost(n, 0.0);
  const std::size_t threads = ReductionThreads(n, num_threads_);
  bool completed;
  if (dense_ != nullptr) {
    const std::vector<float>& packed = dense_->packed();
    completed = ParallelForRowsCancellable(
        n, threads, run, [&](std::size_t u, std::size_t) {
          if (u + 1 >= n) return;
          const float* tail = packed.data() + dense_->PackedIndex(u, u + 1);
          const Clustering::Label lu = candidate.label(u);
          double cost = 0.0;
          if (mult == nullptr) {
            for (std::size_t v = u + 1; v < n; ++v) {
              const double x = tail[v - u - 1];
              cost += lu == candidate.label(v) ? x : 1.0 - x;
            }
          } else {
            const double wu = mult[u];
            for (std::size_t v = u + 1; v < n; ++v) {
              const double x = tail[v - u - 1];
              cost += (lu == candidate.label(v) ? x : 1.0 - x) *
                      (wu * mult[v]);
            }
          }
          row_cost[u] = cost;
        });
  } else {
    std::vector<std::vector<double>> rows = ThreadRows(threads, n);
    completed = ParallelForRowsCancellable(
        n, threads, run, [&](std::size_t u, std::size_t tid) {
          if (u + 1 >= n) return;
          std::vector<double>& row = rows[tid];
          source_->FillRow(u, row);
          const Clustering::Label lu = candidate.label(u);
          double cost = 0.0;
          if (mult == nullptr) {
            for (std::size_t v = u + 1; v < n; ++v) {
              const double x = row[v];
              cost += lu == candidate.label(v) ? x : 1.0 - x;
            }
          } else {
            const double wu = mult[u];
            for (std::size_t v = u + 1; v < n; ++v) {
              const double x = row[v];
              cost += (lu == candidate.label(v) ? x : 1.0 - x) *
                      (wu * mult[v]);
            }
          }
          row_cost[u] = cost;
        });
  }
  if (!completed) return InterruptStatus(run);
  double cost = 0.0;
  for (double c : row_cost) cost += c;
  return cost;
}

double CorrelationInstance::LowerBound() const {
  Result<double> bound = LowerBound(RunContext());
  CLUSTAGG_CHECK(bound.ok());
  return *bound;
}

Result<double> CorrelationInstance::LowerBound(const RunContext& run) const {
  const std::size_t n = size();
  if (n == 0) return 0.0;
  const double* mult =
      multiplicities_.empty() ? nullptr : multiplicities_.data();
  std::vector<double> row_bound(n, 0.0);
  const std::size_t threads = ReductionThreads(n, num_threads_);
  bool completed;
  if (dense_ != nullptr) {
    const std::vector<float>& packed = dense_->packed();
    completed = ParallelForRowsCancellable(
        n, threads, run, [&](std::size_t u, std::size_t) {
          if (u + 1 >= n) return;
          const float* tail = packed.data() + dense_->PackedIndex(u, u + 1);
          double bound = 0.0;
          if (mult == nullptr) {
            for (std::size_t v = u + 1; v < n; ++v) {
              const float x = tail[v - u - 1];
              bound += std::min<double>(x, 1.0 - static_cast<double>(x));
            }
          } else {
            const double wu = mult[u];
            for (std::size_t v = u + 1; v < n; ++v) {
              const float x = tail[v - u - 1];
              bound += std::min<double>(x, 1.0 - static_cast<double>(x)) *
                       (wu * mult[v]);
            }
          }
          row_bound[u] = bound;
        });
  } else {
    std::vector<std::vector<double>> rows = ThreadRows(threads, n);
    completed = ParallelForRowsCancellable(
        n, threads, run, [&](std::size_t u, std::size_t tid) {
          if (u + 1 >= n) return;
          std::vector<double>& row = rows[tid];
          source_->FillRow(u, row);
          double bound = 0.0;
          if (mult == nullptr) {
            for (std::size_t v = u + 1; v < n; ++v) {
              bound += std::min(row[v], 1.0 - row[v]);
            }
          } else {
            const double wu = mult[u];
            for (std::size_t v = u + 1; v < n; ++v) {
              bound += std::min(row[v], 1.0 - row[v]) * (wu * mult[v]);
            }
          }
          row_bound[u] = bound;
        });
  }
  if (!completed) return InterruptStatus(run);
  double bound = 0.0;
  for (double b : row_bound) bound += b;
  return bound;
}

std::vector<double> CorrelationInstance::TotalIncidentWeights() const {
  Result<std::vector<double>> weights = TotalIncidentWeights(RunContext());
  CLUSTAGG_CHECK(weights.ok());
  return std::move(weights).value();
}

Result<std::vector<double>> CorrelationInstance::TotalIncidentWeights(
    const RunContext& run) const {
  const std::size_t n = size();
  std::vector<double> weights(n, 0.0);
  if (n == 0) return weights;
  // weights[u] sums its full row in ascending v, the same association
  // order the serial packed scan produced (pairs (v, u), v < u, arrive
  // before pairs (u, v), v > u). Folded instances weight column v by
  // mult[v]: each folded neighbor stands for that many originals at the
  // same distance.
  const double* mult =
      multiplicities_.empty() ? nullptr : multiplicities_.data();
  const std::size_t threads = ReductionThreads(n, num_threads_);
  bool completed;
  if (dense_ != nullptr) {
    const float* packed = dense_->packed().data();
    completed = ParallelForRowsCancellable(
        n, threads, run, [&](std::size_t u, std::size_t) {
          double total = 0.0;
          // Column u of the strict upper triangle by packed stride (see
          // DenseDistanceSource::FillRow): same values, same ascending-v
          // order, one addition per element instead of a packed-index
          // multiply.
          std::size_t idx = u - 1;  // PackedIndex(0, u) when u > 0
          if (mult == nullptr) {
            for (std::size_t v = 0; v < u; ++v) {
              total += packed[idx];
              idx += n - v - 2;
            }
            if (u + 1 < n) {
              const float* tail = packed + dense_->PackedIndex(u, u + 1);
              for (std::size_t v = u + 1; v < n; ++v) {
                total += tail[v - u - 1];
              }
            }
          } else {
            for (std::size_t v = 0; v < u; ++v) {
              total += mult[v] * packed[idx];
              idx += n - v - 2;
            }
            if (u + 1 < n) {
              const float* tail = packed + dense_->PackedIndex(u, u + 1);
              for (std::size_t v = u + 1; v < n; ++v) {
                total += mult[v] * tail[v - u - 1];
              }
            }
          }
          weights[u] = total;
        });
  } else {
    std::vector<std::vector<double>> rows = ThreadRows(threads, n);
    completed = ParallelForRowsCancellable(
        n, threads, run, [&](std::size_t u, std::size_t tid) {
          std::vector<double>& row = rows[tid];
          source_->FillRow(u, row);
          double total = 0.0;
          if (mult == nullptr) {
            for (std::size_t v = 0; v < n; ++v) total += row[v];
          } else {
            for (std::size_t v = 0; v < n; ++v) total += mult[v] * row[v];
          }
          weights[u] = total;
        });
  }
  if (!completed) return InterruptStatus(run);
  return weights;
}

bool CorrelationInstance::SatisfiesTriangleInequality(
    double tolerance) const {
  const std::size_t n = size();
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = 0; v < n; ++v) {
      if (v == u) continue;
      for (std::size_t w = u + 1; w < n; ++w) {
        if (w == v) continue;
        if (distance(u, w) > distance(u, v) + distance(v, w) + tolerance) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace clustagg
