#include "core/annealing.h"

#include <cmath>
#include <string>
#include <utility>

#include "common/rng.h"
#include "core/instrumentation.h"
#include "core/internal/move_state.h"

namespace clustagg {

Result<ClustererRun> AnnealingClusterer::RunControlled(
    const CorrelationInstance& instance, const RunContext& run) const {
  if (options_.cooling <= 0.0 || options_.cooling >= 1.0) {
    return Status::InvalidArgument("cooling must lie in (0, 1)");
  }
  if (options_.moves_per_temperature == 0) {
    return Status::InvalidArgument("moves_per_temperature must be >= 1");
  }
  const std::size_t n = instance.size();
  if (n == 0) return ClustererRun{Clustering(), RunOutcome::kConverged};
  if (n == 1) {
    return ClustererRun{Clustering::SingleCluster(1), RunOutcome::kConverged};
  }

  Rng rng(options_.seed);
  bool state_built = false;
  internal::MoveState state(instance, Clustering::AllSingletons(n), run,
                            &state_built);
  if (!state_built) {
    RunOutcome outcome = run.Poll();
    if (outcome == RunOutcome::kConverged) {
      outcome = RunOutcome::kDeadlineExceeded;
    }
    return ClustererRun{Clustering::AllSingletons(n), outcome};
  }

  // Propose: relocate a random object to a random other cluster or to a
  // fresh singleton.
  auto propose = [&](std::size_t* v, std::size_t* target) {
    *v = rng.NextBounded(n);
    const std::size_t k = state.num_clusters();
    // k candidate targets: the k-1 other clusters plus a fresh
    // singleton (index k-1 after skipping the current slot).
    std::size_t pick = rng.NextBounded(k);
    if (pick == state.cluster_of(*v)) pick = k;  // remap self to fresh
    *target = pick == k ? internal::MoveState::kSingletonTarget : pick;
  };

  // Warm-up walk to scale the initial temperature to the move deltas of
  // this instance.
  double mean_abs_delta = 0.0;
  {
    const std::size_t warmup = std::min<std::size_t>(200, 10 * n);
    for (std::size_t i = 0; i < warmup; ++i) {
      std::size_t v;
      std::size_t target;
      propose(&v, &target);
      mean_abs_delta += std::fabs(state.MoveDelta(v, target));
    }
    mean_abs_delta /= static_cast<double>(warmup);
    if (mean_abs_delta <= 0.0) mean_abs_delta = 1.0;
  }
  double temperature =
      options_.initial_temperature_factor * mean_abs_delta;

  Telemetry* telemetry = run.telemetry();
  RunOutcome outcome = RunOutcome::kConverged;
  double cumulative_delta = 0.0;
  for (std::size_t level = 0; level < options_.max_levels; ++level) {
    if ((outcome = run.Poll()) != RunOutcome::kConverged) break;
    std::size_t accepted = 0;
    for (std::size_t i = 0; i < options_.moves_per_temperature; ++i) {
      if (i % 64 == 63) {
        run.ChargeIterations(64);
        if ((outcome = run.Poll()) != RunOutcome::kConverged) break;
      }
      std::size_t v;
      std::size_t target;
      propose(&v, &target);
      const double delta = state.MoveDelta(v, target);
      if (delta <= 0.0 ||
          rng.NextDouble() < std::exp(-delta / temperature)) {
        state.Apply(v, target);
        cumulative_delta += delta;
        ++accepted;
      }
    }
    // Convergence sample per temperature level: cumulative cost change
    // of all accepted moves (negative = net improvement) and how many
    // proposals this level accepted.
    TelemetryTracePoint(telemetry, "annealing", level, cumulative_delta,
                        accepted);
    TelemetryCount(telemetry, "annealing.levels");
    TelemetryCount(telemetry, "annealing.accepted_moves", accepted);
    if (outcome != RunOutcome::kConverged) break;
    const double rate =
        static_cast<double>(accepted) /
        static_cast<double>(options_.moves_per_temperature);
    if (rate < options_.min_acceptance_rate) break;
    temperature *= options_.cooling;
  }

  if (options_.final_descent && outcome == RunOutcome::kConverged) {
    // Greedy polish: the annealed state is usually one short descent
    // away from its local optimum. Each applied move only lowers the
    // cost, so stopping mid-descent is safe.
    bool any_move = true;
    std::size_t passes = 0;
    while (any_move && passes < 100) {
      if ((outcome = run.Poll()) != RunOutcome::kConverged) break;
      any_move = false;
      for (std::size_t v = 0; v < n; ++v) {
        if (v % 64 == 63) {
          run.ChargeIterations(64);
          if ((outcome = run.Poll()) != RunOutcome::kConverged) break;
        }
        if (state.TryImproveBest(v, 1e-7)) {
          any_move = true;
          TelemetryCount(telemetry, "annealing.descent_moves");
        }
      }
      if (outcome != RunOutcome::kConverged) break;
      ++passes;
    }
  }
  return ClustererRun{state.ToClustering(), outcome};
}

}  // namespace clustagg
