#ifndef CLUSTAGG_CORE_LOCAL_SEARCH_H_
#define CLUSTAGG_CORE_LOCAL_SEARCH_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/clusterer.h"

namespace clustagg {

/// Options for the LOCALSEARCH correlation clusterer.
struct LocalSearchOptions {
  /// Starting partition when running stand-alone (RunFrom ignores this).
  enum class Init {
    /// Every object in its own cluster.
    kSingletons,
    /// All objects in one cluster.
    kSingleCluster,
    /// Uniformly random assignment to ~sqrt(n) clusters (the paper's
    /// "random partition of the data" option).
    kRandom,
  };

  Init init = Init::kSingletons;

  /// Number of clusters for Init::kRandom; 0 picks max(2, round(sqrt(n))).
  std::size_t random_clusters = 0;

  /// Seed for Init::kRandom and for shuffle_order.
  std::uint64_t seed = 1;

  /// Visit objects in a freshly shuffled order each pass instead of index
  /// order. Kept off by default for reproducible benches.
  bool shuffle_order = false;

  /// Hard cap on full passes over the objects (the paper notes the number
  /// of iterations can be large; this guards pathological cases).
  std::size_t max_passes = 1000;

  /// A move must improve the cost by more than this to be taken; guards
  /// against infinite loops on floating-point noise.
  double min_improvement = 1e-7;

  /// Size-capped sweeps (Puleo & Milenkovic's bounded-cluster variant):
  /// when nonzero, a move may not grow a cluster beyond this many
  /// objects (fold multiplicities counted, so the cap is in original
  /// objects). Moves to a fresh singleton stay legal, so with the
  /// default singleton init every intermediate — and final — cluster
  /// respects the cap. A filter on moves, not a repair: oversized
  /// clusters in a starting partition are only broken up when the sweep
  /// finds improving moves out of them. 0 = uncapped.
  std::size_t max_cluster_size = 0;
};

/// The LOCALSEARCH algorithm (Section 4): repeatedly sweep the objects,
/// moving each to the cluster (or to a fresh singleton) that minimizes
///   d(v, C_i) = M(v, C_i) + sum_{j != i} (|C_j| - M(v, C_j)),
/// where M(v, C) = sum_{u in C} X_vu, until no move improves the cost.
/// The implementation maintains M incrementally: evaluating all moves for
/// one object costs O(#clusters) after an O(n) bookkeeping update per
/// accepted move. Also usable as a post-processing step on any other
/// algorithm's output via RunFrom / the Aggregator's refine option.
class LocalSearchClusterer final : public CorrelationClusterer {
 public:
  explicit LocalSearchClusterer(LocalSearchOptions options = {})
      : options_(options) {}

  std::string name() const override { return "LOCALSEARCH"; }

  /// Polls `run` once per pass and every 64 objects within a pass. Sweeps
  /// only ever lower the cost, so stopping mid-pass returns the partition
  /// as improved so far; an interrupt during the up-front M-table build
  /// returns the starting partition unchanged.
  Result<ClustererRun> RunControlled(const CorrelationInstance& instance,
                                     const RunContext& run) const override;

  /// Improves a given complete starting partition; the result never has a
  /// higher correlation cost than `initial`.
  Result<Clustering> RunFrom(const CorrelationInstance& instance,
                             const Clustering& initial) const;

  /// Budgeted RunFrom, with the same polling cadence as RunControlled.
  /// Used by the Aggregator to refine another algorithm's output inside
  /// the caller's deadline.
  Result<ClustererRun> RunFromControlled(const CorrelationInstance& instance,
                                         const Clustering& initial,
                                         const RunContext& run) const;

  const LocalSearchOptions& options() const { return options_; }

 private:
  LocalSearchOptions options_;
};

}  // namespace clustagg

#endif  // CLUSTAGG_CORE_LOCAL_SEARCH_H_
