#include "core/lower_bound.h"

#include <algorithm>

namespace clustagg {

double DisagreementLowerBound(const ClusteringSet& input,
                              const MissingValueOptions& missing) {
  const std::size_t n = input.num_objects();
  const double w = input.total_weight();
  double bound = 0.0;
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      const double x = input.PairwiseDistance(u, v, missing);
      bound += w * std::min(x, 1.0 - x);
    }
  }
  return bound;
}

}  // namespace clustagg
