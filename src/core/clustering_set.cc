#include "core/clustering_set.h"

#include <cmath>
#include <string>

#include "common/check.h"
#include "core/disagreement.h"

namespace clustagg {

ClusteringSet::ClusteringSet(std::vector<Clustering> clusterings,
                             std::vector<double> weights)
    : clusterings_(std::move(clusterings)), weights_(std::move(weights)) {
  num_objects_ = clusterings_.front().size();
  for (const Clustering& c : clusterings_) {
    if (c.HasMissing()) {
      has_missing_ = true;
      break;
    }
  }
  if (weights_.empty()) weights_.assign(clusterings_.size(), 1.0);
  for (double w : weights_) total_weight_ += w;
}

Result<ClusteringSet> ClusteringSet::Create(
    std::vector<Clustering> clusterings, std::vector<double> weights) {
  if (clusterings.empty()) {
    return Status::InvalidArgument("at least one input clustering required");
  }
  const std::size_t n = clusterings.front().size();
  for (std::size_t i = 0; i < clusterings.size(); ++i) {
    if (clusterings[i].size() != n) {
      return Status::InvalidArgument(
          "clustering " + std::to_string(i) + " covers " +
          std::to_string(clusterings[i].size()) + " objects, expected " +
          std::to_string(n));
    }
    if (Status s = clusterings[i].Validate(); !s.ok()) return s;
  }
  if (!weights.empty()) {
    if (weights.size() != clusterings.size()) {
      return Status::InvalidArgument(
          "got " + std::to_string(weights.size()) + " weights for " +
          std::to_string(clusterings.size()) + " clusterings");
    }
    for (double w : weights) {
      if (!(w > 0.0) || !std::isfinite(w)) {
        return Status::InvalidArgument(
            "clustering weights must be positive and finite");
      }
    }
  }
  return ClusteringSet(std::move(clusterings), std::move(weights));
}

double ClusteringSet::PairwiseDistance(
    std::size_t u, std::size_t v, const MissingValueOptions& missing) const {
  CLUSTAGG_CHECK(u < num_objects_ && v < num_objects_);
  if (u == v) return 0.0;
  double disagreeing = 0.0;
  double opinionated = 0.0;
  for (std::size_t i = 0; i < clusterings_.size(); ++i) {
    const Clustering& c = clusterings_[i];
    const Clustering::Label lu = c.label(u);
    const Clustering::Label lv = c.label(v);
    if (lu == Clustering::kMissing || lv == Clustering::kMissing) continue;
    opinionated += weights_[i];
    if (lu != lv) disagreeing += weights_[i];
  }
  switch (missing.policy) {
    case MissingValuePolicy::kRandomCoin:
      // Every silent clustering contributes its expected disagreement.
      disagreeing += (total_weight_ - opinionated) *
                     (1.0 - missing.coin_together_probability);
      return disagreeing / total_weight_;
    case MissingValuePolicy::kIgnore:
      if (opinionated == 0.0) return 0.5;
      return disagreeing / opinionated;
  }
  CLUSTAGG_CHECK(false);
  return 0.0;
}

Result<double> ClusteringSet::TotalDisagreements(
    const Clustering& candidate, const MissingValueOptions& missing) const {
  if (candidate.size() != num_objects_) {
    return Status::InvalidArgument(
        "candidate clustering covers " + std::to_string(candidate.size()) +
        " objects, expected " + std::to_string(num_objects_));
  }
  if (candidate.HasMissing()) {
    return Status::InvalidArgument(
        "candidate clustering must be complete (no missing labels)");
  }

  if (!has_missing_ && missing.policy == MissingValuePolicy::kRandomCoin) {
    // Fast exact path: weighted sum of contingency-table distances.
    double total = 0.0;
    for (std::size_t i = 0; i < clusterings_.size(); ++i) {
      Result<std::uint64_t> d =
          DisagreementDistance(clusterings_[i], candidate);
      if (!d.ok()) return d.status();
      total += weights_[i] * static_cast<double>(*d);
    }
    return total;
  }

  if (missing.policy == MissingValuePolicy::kRandomCoin) {
    // Per-clustering decomposition, still O(m * (n + K^2)). A clustering
    // disagrees exactly (0/1) on the pairs where both endpoints have
    // labels. On a pair touching a missing label the coin reports
    // "together" with probability p, so the expected disagreement is
    // (1 - p) when the candidate joins the pair and p when it splits it.
    const auto n64 = static_cast<std::uint64_t>(num_objects_);
    const double all_pairs = 0.5 * static_cast<double>(n64) *
                             static_cast<double>(n64 - 1);
    const double p = missing.coin_together_probability;
    Result<std::uint64_t> candidate_together = CoClusteredPairs(candidate);
    if (!candidate_together.ok()) return candidate_together.status();
    double total = 0.0;
    for (std::size_t i = 0; i < clusterings_.size(); ++i) {
      const Clustering& c = clusterings_[i];
      std::vector<std::size_t> present;
      present.reserve(num_objects_);
      for (std::size_t v = 0; v < num_objects_; ++v) {
        if (c.has_label(v)) present.push_back(v);
      }
      const auto np = static_cast<double>(present.size());
      const double present_pairs = 0.5 * np * (np - 1.0);
      const Clustering candidate_present = candidate.Restrict(present);
      Result<std::uint64_t> d =
          DisagreementDistance(c.Restrict(present), candidate_present);
      if (!d.ok()) return d.status();
      Result<std::uint64_t> together_present =
          CoClusteredPairs(candidate_present);
      if (!together_present.ok()) return together_present.status();
      // Pairs with a missing endpoint, split by what the candidate does.
      const double missing_pairs = all_pairs - present_pairs;
      const double missing_together =
          static_cast<double>(*candidate_together - *together_present);
      const double missing_apart = missing_pairs - missing_together;
      total += weights_[i] *
               (static_cast<double>(*d) + missing_together * (1.0 - p) +
                missing_apart * p);
    }
    return total;
  }

  // General (expected-value) path for the kIgnore policy, whose per-pair
  // normalization does not decompose by clustering. X_uv already
  // averages over the weighted clusterings, so the total expected
  // disagreement is
  //   sum_{u<v, together} W * X_uv + sum_{u<v, apart} W * (1 - X_uv),
  // with W the total weight.
  double total = 0.0;
  for (std::size_t u = 0; u < num_objects_; ++u) {
    for (std::size_t v = u + 1; v < num_objects_; ++v) {
      const double x = PairwiseDistance(u, v, missing);
      if (candidate.SameCluster(u, v)) {
        total += total_weight_ * x;
      } else {
        total += total_weight_ * (1.0 - x);
      }
    }
  }
  return total;
}

}  // namespace clustagg
