#ifndef CLUSTAGG_CORE_PIVOT_H_
#define CLUSTAGG_CORE_PIVOT_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/clusterer.h"

namespace clustagg {

/// Options for the CC-PIVOT clusterer.
struct PivotOptions {
  /// Number of independent randomized runs; the lowest-cost result wins.
  /// 1 reproduces the bare algorithm.
  std::size_t repetitions = 8;
  std::uint64_t seed = 1;
  /// A non-pivot vertex joins the pivot's cluster when its distance to
  /// the pivot is below this threshold (1/2 = "the majority of the input
  /// clusterings put them together").
  double join_threshold = 0.5;
};

/// The CC-PIVOT algorithm of Ailon, Charikar, Newman (STOC 2005): pick a
/// random unclustered vertex as pivot, cluster every unclustered vertex
/// within distance < 1/2 of it with the pivot, remove, repeat.
///
/// This is the natural follow-up to the paper's BALLS algorithm from the
/// same year (the paper's Section 6 surveys this line of work): expected
/// 3-approximation on 0/1 instances and expected 5-approximation for
/// weighted instances with probability constraints, which covers the
/// instances produced by clustering aggregation. Included as the
/// "future work" extension and as an ablation baseline against BALLS:
/// same ball-growing idea, random pivots instead of the sorted-weight
/// heuristic, no alpha test. O(n^2) per repetition.
class PivotClusterer final : public CorrelationClusterer {
 public:
  explicit PivotClusterer(PivotOptions options = {}) : options_(options) {}

  std::string name() const override { return "CC-PIVOT"; }

  /// Polls `run` once per pivot and once per repetition. A repetition cut
  /// short finishes by making the not-yet-clustered vertices singletons;
  /// the best fully-scored candidate so far wins, so an interrupt after
  /// the first repetition never degrades below that repetition's result.
  Result<ClustererRun> RunControlled(const CorrelationInstance& instance,
                                     const RunContext& run) const override;

  const PivotOptions& options() const { return options_; }

 private:
  PivotOptions options_;
};

}  // namespace clustagg

#endif  // CLUSTAGG_CORE_PIVOT_H_
