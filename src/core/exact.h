#ifndef CLUSTAGG_CORE_EXACT_H_
#define CLUSTAGG_CORE_EXACT_H_

#include <cstddef>
#include <string>

#include "core/clusterer.h"

namespace clustagg {

/// Options for the exact solver.
struct ExactOptions {
  /// Refuse instances larger than this (Bell numbers explode; Bell(12) is
  /// already 4.2M partitions). Raise deliberately for ad-hoc experiments.
  std::size_t max_objects = 12;
};

/// Exact correlation-clustering optimum by exhaustive enumeration of all
/// set partitions (restricted-growth strings). Exponential — intended as
/// the oracle for tests and the empirical approximation-ratio ablation,
/// not for real data. Returns kResourceExhausted beyond max_objects.
class ExactClusterer final : public CorrelationClusterer {
 public:
  explicit ExactClusterer(ExactOptions options = {}) : options_(options) {}

  std::string name() const override { return "EXACT"; }

  /// Polls `run` every few thousand search nodes. An interrupt stops the
  /// branch-and-bound and returns the incumbent — the best complete
  /// partition found so far — so the answer degrades from "optimal" to
  /// "good" rather than to an error. n > max_objects is still a hard
  /// ResourceExhausted error (the caller opted into the exact solver);
  /// the aggregation pipeline catches it and falls back to BALLS.
  Result<ClustererRun> RunControlled(const CorrelationInstance& instance,
                                     const RunContext& run) const override;

  const ExactOptions& options() const { return options_; }

 private:
  ExactOptions options_;
};

}  // namespace clustagg

#endif  // CLUSTAGG_CORE_EXACT_H_
