#ifndef CLUSTAGG_CORE_CORRELATION_INSTANCE_H_
#define CLUSTAGG_CORE_CORRELATION_INSTANCE_H_

#include <cstddef>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/run_context.h"
#include "common/status.h"
#include "common/symmetric_matrix.h"
#include "core/clustering.h"
#include "core/clustering_set.h"
#include "core/distance_source.h"

namespace clustagg {

/// An instance of the correlation-clustering problem (Problem 2): n
/// objects and pairwise distances X_uv in [0, 1]. The cost of a candidate
/// partition C is
///   d(C) = sum_{u<v, C(u)=C(v)} X_uv + sum_{u<v, C(u)!=C(v)} (1 - X_uv).
///
/// Instances built from a ClusteringSet additionally satisfy the triangle
/// inequality on X, the property the BALLS analysis relies on.
///
/// The instance is a thin owner over a pluggable DistanceSource: dense
/// (packed float matrix, O(n^2/2) memory, O(1) queries) or lazy (O(n*m)
/// memory, O(m) queries). Both backends answer bit-identically, so every
/// algorithm produces the same output whichever one carries the data.
/// Whole-instance reductions (Cost, LowerBound, TotalIncidentWeights) run
/// row-parallel with a deterministic, thread-count-independent summation.
class CorrelationInstance {
 public:
  CorrelationInstance() = default;

  /// Validating factory: every entry must lie in [0, 1].
  static Result<CorrelationInstance> FromDistances(
      SymmetricMatrix<float> distances);

  /// Builds the instance summarizing a set of input clusterings:
  /// X_uv = (expected) fraction of clusterings separating u and v under
  /// the missing-value policy, carried by the backend chosen in
  /// `options`. Dense construction is O(m n^2 / threads) and fails with
  /// ResourceExhausted when the triangle cannot be allocated; lazy
  /// construction is O(n m).
  static Result<CorrelationInstance> Build(
      const ClusteringSet& input, const MissingValueOptions& missing = {},
      const DistanceSourceOptions& options = {});

  /// Same, restricted to the given objects: object i of the instance is
  /// subset[i]. Used by the SAMPLING algorithm.
  static Result<CorrelationInstance> BuildSubset(
      const ClusteringSet& input, const std::vector<std::size_t>& subset,
      const MissingValueOptions& missing = {},
      const DistanceSourceOptions& options = {});

  /// Wraps an already-built source. num_threads seeds the parallel
  /// reductions (0 = one per hardware core). A non-empty `multiplicities`
  /// (one entry per object, each >= 1) marks a *folded* instance — object
  /// v stands for multiplicities[v] identical originals — and weights
  /// every pair (u, v) by multiplicities[u] * multiplicities[v] in Cost /
  /// LowerBound and every column by multiplicities[v] in
  /// TotalIncidentWeights, so optimizing the folded instance optimizes
  /// the original objective. With all-ones multiplicities the weighted
  /// arithmetic is bit-identical to the unweighted path (multiplying by
  /// 1.0 is exact).
  static CorrelationInstance FromSource(
      std::shared_ptr<const DistanceSource> source,
      std::size_t num_threads = 0, std::vector<double> multiplicities = {});

  /// Legacy dense builders, kept for callers predating the pluggable
  /// backends. CHECK-fail if the dense matrix cannot be allocated; prefer
  /// Build for sizes that come from data.
  static CorrelationInstance FromClusterings(
      const ClusteringSet& input, const MissingValueOptions& missing = {});
  static CorrelationInstance FromClusteringsSubset(
      const ClusteringSet& input, const std::vector<std::size_t>& subset,
      const MissingValueOptions& missing = {});

  std::size_t size() const { return source_ ? source_->size() : 0; }

  /// X_uv (0 when u == v). Inlined O(1) matrix read under the dense
  /// backend, O(m) recomputation under the lazy one.
  double distance(std::size_t u, std::size_t v) const {
    if (dense_ != nullptr) return (*dense_)(u, v);
    return source_->distance(u, v);
  }

  /// Bulk query: writes X_uv into row[v] for every v in [0, n).
  void FillRow(std::size_t u, std::span<double> row) const {
    source_->FillRow(u, row);
  }

  /// Correlation-clustering cost of a complete candidate partition.
  /// O(n^2 / threads) dense, O(m n^2 / threads) lazy; identical result
  /// for every backend and thread count. The budgeted overload polls
  /// `run` per row chunk; a partial sum is useless, so an interrupt
  /// abandons the reduction with a Cancelled/DeadlineExceeded status.
  Result<double> Cost(const Clustering& candidate) const {
    return Cost(candidate, RunContext());
  }
  Result<double> Cost(const Clustering& candidate,
                      const RunContext& run) const;

  /// Per-pair lower bound on the optimal cost: every unordered pair
  /// contributes at least min(X_uv, 1 - X_uv) whatever the partition does
  /// with it. This is the "Lower bound" row of Tables 2 and 3 (up to the
  /// factor m relating d(C) and D(C)). The budgeted overload abandons
  /// with an interrupt status like Cost.
  double LowerBound() const;
  Result<double> LowerBound(const RunContext& run) const;

  /// Total incident weight sum_v X_uv of each vertex; the BALLS algorithm
  /// sorts vertices by this. O(n^2 / threads) dense. The budgeted
  /// overload abandons with an interrupt status like Cost.
  std::vector<double> TotalIncidentWeights() const;
  Result<std::vector<double>> TotalIncidentWeights(
      const RunContext& run) const;

  /// Exhaustively verifies X_uw <= X_uv + X_vw for all triples, within
  /// `tolerance`. O(n^3) — test helper for small instances.
  bool SatisfiesTriangleInequality(double tolerance = 1e-6) const;

  /// The backing source (nullptr for a default-constructed instance).
  const DistanceSource* source() const { return source_.get(); }
  std::shared_ptr<const DistanceSource> shared_source() const {
    return source_;
  }

  /// The packed matrix when the backend is dense, nullptr otherwise.
  const SymmetricMatrix<float>* dense_matrix() const { return dense_; }

  /// "dense" or "lazy".
  const char* backend_name() const {
    return source_ ? source_->name() : "dense";
  }

  /// The thread knob this instance was built with (0 = hardware
  /// concurrency), reused by its parallel reductions.
  std::size_t num_threads() const { return num_threads_; }

  /// True when this instance carries fold multiplicities (see
  /// FromSource). Folded instances must be scored with the weighted
  /// reductions; clusterers read `multiplicity` to weight their own
  /// internal sums.
  bool folded() const { return !multiplicities_.empty(); }

  /// Number of original objects represented by folded object v (1.0 for
  /// unfolded instances).
  double multiplicity(std::size_t v) const {
    return multiplicities_.empty() ? 1.0 : multiplicities_[v];
  }

  /// The raw multiplicity vector; empty for unfolded instances.
  const std::vector<double>& multiplicities() const {
    return multiplicities_;
  }

 private:
  CorrelationInstance(std::shared_ptr<const DistanceSource> source,
                      std::size_t num_threads,
                      std::vector<double> multiplicities = {})
      : source_(std::move(source)),
        dense_(source_ ? source_->dense_matrix() : nullptr),
        num_threads_(num_threads),
        multiplicities_(std::move(multiplicities)) {}

  std::shared_ptr<const DistanceSource> source_;
  /// Borrowed from source_ when dense: devirtualized hot-path reads.
  const SymmetricMatrix<float>* dense_ = nullptr;
  std::size_t num_threads_ = 0;
  /// Fold multiplicities (empty = every object counts once).
  std::vector<double> multiplicities_;
};

}  // namespace clustagg

#endif  // CLUSTAGG_CORE_CORRELATION_INSTANCE_H_
