#ifndef CLUSTAGG_CORE_CORRELATION_INSTANCE_H_
#define CLUSTAGG_CORE_CORRELATION_INSTANCE_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "common/symmetric_matrix.h"
#include "core/clustering.h"
#include "core/clustering_set.h"

namespace clustagg {

/// An instance of the correlation-clustering problem (Problem 2): n
/// objects and pairwise distances X_uv in [0, 1]. The cost of a candidate
/// partition C is
///   d(C) = sum_{u<v, C(u)=C(v)} X_uv + sum_{u<v, C(u)!=C(v)} (1 - X_uv).
///
/// Instances built from a ClusteringSet additionally satisfy the triangle
/// inequality on X, the property the BALLS analysis relies on.
///
/// Storage is a packed symmetric float matrix: X values derived from m
/// clusterings are multiples of 1/m (m small), so float is ample, and the
/// Mushrooms-scale instance (n = 8124) fits in ~130 MB.
class CorrelationInstance {
 public:
  CorrelationInstance() = default;

  /// Validating factory: every entry must lie in [0, 1].
  static Result<CorrelationInstance> FromDistances(
      SymmetricMatrix<float> distances);

  /// Builds the instance summarizing a set of input clusterings:
  /// X_uv = (expected) fraction of clusterings separating u and v under
  /// the missing-value policy. O(m n^2).
  static CorrelationInstance FromClusterings(
      const ClusteringSet& input, const MissingValueOptions& missing = {});

  /// Same, restricted to the given objects: object i of the instance is
  /// subset[i]. Used by the SAMPLING algorithm.
  static CorrelationInstance FromClusteringsSubset(
      const ClusteringSet& input, const std::vector<std::size_t>& subset,
      const MissingValueOptions& missing = {});

  std::size_t size() const { return distances_.size(); }

  /// X_uv (0 when u == v).
  double distance(std::size_t u, std::size_t v) const {
    return distances_(u, v);
  }

  /// Correlation-clustering cost of a complete candidate partition.
  /// O(n^2).
  Result<double> Cost(const Clustering& candidate) const;

  /// Per-pair lower bound on the optimal cost: every unordered pair
  /// contributes at least min(X_uv, 1 - X_uv) whatever the partition does
  /// with it. This is the "Lower bound" row of Tables 2 and 3 (up to the
  /// factor m relating d(C) and D(C)).
  double LowerBound() const;

  /// Total incident weight sum_v X_uv of each vertex; the BALLS algorithm
  /// sorts vertices by this. O(n^2).
  std::vector<double> TotalIncidentWeights() const;

  /// Exhaustively verifies X_uw <= X_uv + X_vw for all triples, within
  /// `tolerance`. O(n^3) — test helper for small instances.
  bool SatisfiesTriangleInequality(double tolerance = 1e-6) const;

  const SymmetricMatrix<float>& matrix() const { return distances_; }

 private:
  explicit CorrelationInstance(SymmetricMatrix<float> distances)
      : distances_(std::move(distances)) {}

  SymmetricMatrix<float> distances_;
};

}  // namespace clustagg

#endif  // CLUSTAGG_CORE_CORRELATION_INSTANCE_H_
