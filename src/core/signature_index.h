#ifndef CLUSTAGG_CORE_SIGNATURE_INDEX_H_
#define CLUSTAGG_CORE_SIGNATURE_INDEX_H_

#include <cstddef>
#include <vector>

#include "core/clustering.h"
#include "core/clustering_set.h"

namespace clustagg {

/// Groups objects by their *signature*: the full m-tuple of labels an
/// object carries across the input clusterings (missing labels included,
/// so the grouping is exact under every missing-value policy and any
/// input weighting). Two objects with the same signature have distance 0
/// to each other and bit-identical distances to every third object, so
/// any instance can be *folded*: build the s x s distance matrix over one
/// representative per signature (s <= n distinct signatures), attach the
/// group sizes as multiplicity weights so the folded objective equals the
/// unfolded one, run any clusterer, and expand the folded labels back to
/// object space. Real categorical datasets (the paper's Mushrooms /
/// Census evaluations) are dominated by duplicate signatures, dropping
/// the dense build from O(n^2 m) to O(s^2 m + n).
///
/// Co-clustering duplicates is optimal without loss: within a signature
/// group every pairwise distance is 0, so splitting a group never lowers
/// the disagreement objective.
class SignatureIndex {
 public:
  /// Groups all objects of `input`. Signatures are numbered 0..s-1 in
  /// order of first appearance (ascending object id), so the result is
  /// deterministic.
  static SignatureIndex Build(const ClusteringSet& input);

  /// Same, restricted to `subset`: element i of the index describes
  /// subset[i]. `representative` then holds *global* object ids (members
  /// of `subset`), while `signature_of` is indexed in subset space. Used
  /// by the sampling pipeline to fold its sampled sub-instance.
  static SignatureIndex BuildSubset(const ClusteringSet& input,
                                    const std::vector<std::size_t>& subset);

  /// Number of objects grouped (n, or subset size).
  std::size_t num_objects() const { return signature_of_.size(); }

  /// Number of distinct signatures s.
  std::size_t num_signatures() const { return representative_.size(); }

  /// True when folding would not shrink the instance (s == n): every
  /// object is unique, and the fold is a documented no-op.
  bool trivial() const { return num_signatures() == num_objects(); }

  /// s / n in (0, 1]; 1.0 when folding is a no-op.
  double fold_ratio() const {
    return num_objects() == 0
               ? 1.0
               : static_cast<double>(num_signatures()) /
                     static_cast<double>(num_objects());
  }

  /// Global object id of the first object carrying signature g. Using the
  /// first occurrence keeps the folded subset ascending, so folded builds
  /// reuse the existing subset machinery unchanged.
  const std::vector<std::size_t>& representatives() const {
    return representative_;
  }

  /// Signature id of object v (index in subset space for BuildSubset).
  std::size_t signature_of(std::size_t v) const { return signature_of_[v]; }

  /// Group size of each signature, as the multiplicity weights a folded
  /// CorrelationInstance attaches to its objects. All-ones exactly when
  /// trivial().
  const std::vector<double>& multiplicities() const {
    return multiplicity_;
  }

  /// Maps a clustering of the s folded objects back to the n original
  /// ones: object v gets the folded label of its signature. The result is
  /// normalized (labels renumbered by first appearance in object order).
  Clustering Expand(const Clustering& folded) const;

 private:
  static SignatureIndex BuildImpl(const ClusteringSet& input,
                                  const std::vector<std::size_t>* subset);

  std::vector<std::size_t> representative_;
  /// Subset-space index of each representative (== representative_ when
  /// built without a subset); lets BuildImpl compare candidate rows
  /// without a global-id lookup.
  std::vector<std::size_t> rep_subset_index_;
  std::vector<std::size_t> signature_of_;
  std::vector<double> multiplicity_;
};

}  // namespace clustagg

#endif  // CLUSTAGG_CORE_SIGNATURE_INDEX_H_
