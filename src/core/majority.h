#ifndef CLUSTAGG_CORE_MAJORITY_H_
#define CLUSTAGG_CORE_MAJORITY_H_

#include <string>

#include "core/clusterer.h"

namespace clustagg {

/// Options for the majority / evidence-accumulation baseline.
struct MajorityOptions {
  /// Two objects are linked when the fraction of clusterings separating
  /// them is strictly below this threshold (1/2 = simple majority, the
  /// setting of Fred & Jain's evidence accumulation).
  double link_threshold = 0.5;
};

/// Co-association majority baseline (Fred & Jain, ICPR 2002 — reference
/// [14] of the paper): link every pair the majority of input clusterings
/// puts together and output the connected components of the link graph.
/// This is single linkage on the co-association matrix. It ignores the
/// correlation-clustering penalty for *joining* distant objects through
/// chains, which is exactly the failure mode the paper's objective
/// repairs — included as a comparison baseline and exercised in the
/// ablation bench. O(n^2).
class MajorityClusterer final : public CorrelationClusterer {
 public:
  explicit MajorityClusterer(MajorityOptions options = {})
      : options_(options) {}

  std::string name() const override { return "MAJORITY"; }

  /// Polls `run` once per row of the link scan. An interrupted scan
  /// returns the components of the links seen so far — a valid partition
  /// that simply merges fewer pairs than the full majority graph.
  Result<ClustererRun> RunControlled(const CorrelationInstance& instance,
                                     const RunContext& run) const override;

  const MajorityOptions& options() const { return options_; }

 private:
  MajorityOptions options_;
};

}  // namespace clustagg

#endif  // CLUSTAGG_CORE_MAJORITY_H_
