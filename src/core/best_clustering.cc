#include "core/best_clustering.h"

namespace clustagg {

Result<BestClusteringResult> BestClustering(
    const ClusteringSet& input, const MissingValueOptions& missing) {
  BestClusteringResult best;
  bool first = true;
  for (std::size_t i = 0; i < input.num_clusterings(); ++i) {
    Clustering candidate = input.clustering(i).WithMissingAsSingletons();
    Result<double> d = input.TotalDisagreements(candidate, missing);
    if (!d.ok()) return d.status();
    if (first || *d < best.total_disagreements) {
      first = false;
      best.index = i;
      best.clustering = candidate.Normalized();
      best.total_disagreements = *d;
    }
  }
  return best;
}

}  // namespace clustagg
