#include "core/best_clustering.h"

#include "core/instrumentation.h"

namespace clustagg {

Result<BestClusteringResult> BestClustering(
    const ClusteringSet& input, const MissingValueOptions& missing) {
  return BestClustering(input, missing, RunContext());
}

Result<BestClusteringResult> BestClustering(const ClusteringSet& input,
                                            const MissingValueOptions& missing,
                                            const RunContext& run) {
  BestClusteringResult best;
  bool first = true;
  for (std::size_t i = 0; i < input.num_clusterings(); ++i) {
    // The first candidate is scored unconditionally so the result always
    // holds a valid scored clustering; the budget can only trim how many
    // of the remaining inputs get compared.
    if (!first) {
      run.ChargeIterations(1);
      best.outcome = run.Poll();
      if (best.outcome != RunOutcome::kConverged) break;
    }
    Clustering candidate = input.clustering(i).WithMissingAsSingletons();
    Result<double> d = input.TotalDisagreements(candidate, missing);
    if (!d.ok()) return d.status();
    // Per-candidate sample: (input index, its total disagreements,
    // 1 when it became the new best).
    TelemetryTracePoint(run.telemetry(), "bestclustering", i, *d,
                        (first || *d < best.total_disagreements) ? 1 : 0);
    TelemetryCount(run.telemetry(), "bestclustering.candidates_scored");
    if (first || *d < best.total_disagreements) {
      first = false;
      best.index = i;
      best.clustering = candidate.Normalized();
      best.total_disagreements = *d;
    }
  }
  return best;
}

}  // namespace clustagg
