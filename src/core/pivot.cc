#include "core/pivot.h"

#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace clustagg {

namespace {

Clustering PivotOnce(const CorrelationInstance& instance,
                     double join_threshold, Rng* rng,
                     std::vector<double>* row_buf) {
  const std::size_t n = instance.size();
  std::vector<Clustering::Label> labels(n, Clustering::kMissing);
  std::vector<std::size_t> order = rng->Permutation(n);
  Clustering::Label next = 0;
  std::vector<double>& row = *row_buf;
  for (std::size_t pivot : order) {
    if (labels[pivot] != Clustering::kMissing) continue;
    const Clustering::Label cluster = next++;
    labels[pivot] = cluster;
    // One bulk row query per pivot: O(n m) per opened cluster under the
    // lazy backend instead of per candidate.
    instance.FillRow(pivot, row);
    for (std::size_t v = 0; v < n; ++v) {
      if (labels[v] != Clustering::kMissing || v == pivot) continue;
      if (row[v] < join_threshold) {
        labels[v] = cluster;
      }
    }
  }
  return Clustering(std::move(labels));
}

}  // namespace

Result<Clustering> PivotClusterer::Run(
    const CorrelationInstance& instance) const {
  if (options_.repetitions < 1) {
    return Status::InvalidArgument("repetitions must be >= 1");
  }
  if (options_.join_threshold < 0.0 || options_.join_threshold > 1.0) {
    return Status::InvalidArgument("join_threshold must lie in [0, 1]");
  }
  const std::size_t n = instance.size();
  if (n == 0) return Clustering();

  Rng rng(options_.seed);
  Clustering best;
  double best_cost = 0.0;
  bool first = true;
  std::vector<double> row_buf(n);
  for (std::size_t r = 0; r < options_.repetitions; ++r) {
    Clustering candidate =
        PivotOnce(instance, options_.join_threshold, &rng, &row_buf);
    Result<double> cost = instance.Cost(candidate);
    CLUSTAGG_CHECK(cost.ok());
    if (first || *cost < best_cost) {
      best = std::move(candidate);
      best_cost = *cost;
      first = false;
    }
  }
  return best.Normalized();
}

}  // namespace clustagg
