#include "core/pivot.h"

#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "core/instrumentation.h"

namespace clustagg {

namespace {

/// One CC-PIVOT pass. Polls `run` per pivot; on interrupt the remaining
/// unclustered vertices become singletons (a valid partition) and
/// *outcome records why. The RNG is always advanced by exactly one
/// permutation, so later repetitions see the same stream regardless of
/// where earlier ones were cut.
Clustering PivotOnce(const CorrelationInstance& instance,
                     double join_threshold, const RunContext& run, Rng* rng,
                     std::vector<double>* row_buf, RunOutcome* outcome) {
  const std::size_t n = instance.size();
  std::vector<Clustering::Label> labels(n, Clustering::kMissing);
  std::vector<std::size_t> order = rng->Permutation(n);
  Clustering::Label next = 0;
  std::vector<double>& row = *row_buf;
  for (std::size_t pivot : order) {
    if (labels[pivot] != Clustering::kMissing) continue;
    run.ChargeIterations(1);
    if (*outcome == RunOutcome::kConverged) *outcome = run.Poll();
    const Clustering::Label cluster = next++;
    labels[pivot] = cluster;
    if (*outcome != RunOutcome::kConverged) continue;  // singleton sweep
    // One bulk row query per pivot: O(n m) per opened cluster under the
    // lazy backend instead of per candidate.
    instance.FillRow(pivot, row);
    for (std::size_t v = 0; v < n; ++v) {
      if (labels[v] != Clustering::kMissing || v == pivot) continue;
      if (row[v] < join_threshold) {
        labels[v] = cluster;
      }
    }
  }
  return Clustering(std::move(labels));
}

}  // namespace

Result<ClustererRun> PivotClusterer::RunControlled(
    const CorrelationInstance& instance, const RunContext& run) const {
  if (options_.repetitions < 1) {
    return Status::InvalidArgument("repetitions must be >= 1");
  }
  if (options_.join_threshold < 0.0 || options_.join_threshold > 1.0) {
    return Status::InvalidArgument("join_threshold must lie in [0, 1]");
  }
  const std::size_t n = instance.size();
  if (n == 0) return ClustererRun{Clustering(), RunOutcome::kConverged};

  Rng rng(options_.seed);
  Clustering best;
  double best_cost = 0.0;
  bool first = true;
  RunOutcome outcome = RunOutcome::kConverged;
  std::vector<double> row_buf(n);
  for (std::size_t r = 0; r < options_.repetitions; ++r) {
    Clustering candidate = PivotOnce(instance, options_.join_threshold, run,
                                     &rng, &row_buf, &outcome);
    if (first) {
      // Keep the first candidate unconditionally so an interrupt before
      // any scoring completes still returns a valid partition.
      best = candidate;
      first = false;
    }
    if (outcome != RunOutcome::kConverged) break;
    Result<double> cost = instance.Cost(candidate, run);
    if (!cost.ok()) {
      if (RunContext::IsInterrupt(cost.status())) {
        outcome = RunContext::OutcomeFromInterrupt(cost.status());
        break;  // unscored candidate is discarded; best so far stands
      }
      return cost.status();
    }
    // Convergence sample per repetition: (repetition, candidate cost,
    // 1 when it became the new best).
    TelemetryTracePoint(run.telemetry(), "pivot", r, *cost,
                        (r == 0 || *cost < best_cost) ? 1 : 0);
    TelemetryCount(run.telemetry(), "pivot.repetitions");
    if (r == 0 || *cost < best_cost) {
      best = std::move(candidate);
      best_cost = *cost;
    }
    if ((outcome = run.Poll()) != RunOutcome::kConverged) break;
  }
  return ClustererRun{best.Normalized(), outcome};
}

}  // namespace clustagg
