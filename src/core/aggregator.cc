#include "core/aggregator.h"

#include <utility>

#include "core/best_clustering.h"
#include "core/correlation_instance.h"

namespace clustagg {

const char* AggregationAlgorithmName(AggregationAlgorithm algorithm) {
  switch (algorithm) {
    case AggregationAlgorithm::kBestClustering:
      return "BESTCLUSTERING";
    case AggregationAlgorithm::kBalls:
      return "BALLS";
    case AggregationAlgorithm::kAgglomerative:
      return "AGGLOMERATIVE";
    case AggregationAlgorithm::kFurthest:
      return "FURTHEST";
    case AggregationAlgorithm::kLocalSearch:
      return "LOCALSEARCH";
    case AggregationAlgorithm::kPivot:
      return "CC-PIVOT";
    case AggregationAlgorithm::kAnnealing:
      return "ANNEALING";
    case AggregationAlgorithm::kMajority:
      return "MAJORITY";
    case AggregationAlgorithm::kExact:
      return "EXACT";
  }
  return "UNKNOWN";
}

Result<std::unique_ptr<CorrelationClusterer>> MakeClusterer(
    const AggregatorOptions& options) {
  switch (options.algorithm) {
    case AggregationAlgorithm::kBalls:
      return std::unique_ptr<CorrelationClusterer>(
          new BallsClusterer(options.balls));
    case AggregationAlgorithm::kAgglomerative:
      return std::unique_ptr<CorrelationClusterer>(
          new AgglomerativeClusterer(options.agglomerative));
    case AggregationAlgorithm::kFurthest:
      return std::unique_ptr<CorrelationClusterer>(
          new FurthestClusterer(options.furthest));
    case AggregationAlgorithm::kLocalSearch:
      return std::unique_ptr<CorrelationClusterer>(
          new LocalSearchClusterer(options.local_search));
    case AggregationAlgorithm::kPivot:
      return std::unique_ptr<CorrelationClusterer>(
          new PivotClusterer(options.pivot));
    case AggregationAlgorithm::kAnnealing:
      return std::unique_ptr<CorrelationClusterer>(
          new AnnealingClusterer(options.annealing));
    case AggregationAlgorithm::kMajority:
      return std::unique_ptr<CorrelationClusterer>(
          new MajorityClusterer(options.majority));
    case AggregationAlgorithm::kExact:
      return std::unique_ptr<CorrelationClusterer>(
          new ExactClusterer(options.exact));
    case AggregationAlgorithm::kBestClustering:
      return Status::InvalidArgument(
          "BESTCLUSTERING needs the original clusterings, not a "
          "correlation instance; call Aggregate or BestClustering directly");
  }
  return Status::InvalidArgument("unknown aggregation algorithm");
}

Result<AggregationResult> Aggregate(const ClusteringSet& input,
                                    const AggregatorOptions& options) {
  AggregationResult out;

  if (options.algorithm == AggregationAlgorithm::kBestClustering) {
    Result<BestClusteringResult> best = BestClustering(input,
                                                       options.missing);
    if (!best.ok()) return best.status();
    out.clustering = std::move(best->clustering);
    out.total_disagreements = best->total_disagreements;
    return out;
  }

  Result<std::unique_ptr<CorrelationClusterer>> clusterer =
      MakeClusterer(options);
  if (!clusterer.ok()) return clusterer.status();

  const bool use_sampling = options.sampling_size > 0 &&
                            options.algorithm != AggregationAlgorithm::kExact;
  Result<Clustering> clustering = [&]() -> Result<Clustering> {
    if (use_sampling) {
      SamplingOptions sampling = options.sampling;
      sampling.sample_size = options.sampling_size;
      sampling.missing = options.missing;
      sampling.source.backend = options.backend;
      sampling.source.num_threads = options.num_threads;
      return SamplingAggregate(input, **clusterer, sampling);
    }
    Result<CorrelationInstance> built = CorrelationInstance::Build(
        input, options.missing, {options.backend, options.num_threads});
    if (!built.ok()) return built.status();
    const CorrelationInstance& instance = *built;
    Result<Clustering> result = (*clusterer)->Run(instance);
    if (!result.ok()) return result.status();
    if (options.refine_with_local_search &&
        options.algorithm != AggregationAlgorithm::kLocalSearch) {
      LocalSearchClusterer refiner(options.local_search);
      return refiner.RunFrom(instance, *result);
    }
    return result;
  }();
  if (!clustering.ok()) return clustering.status();

  Result<double> disagreements =
      input.TotalDisagreements(*clustering, options.missing);
  if (!disagreements.ok()) return disagreements.status();
  out.clustering = std::move(*clustering);
  out.total_disagreements = *disagreements;
  return out;
}

}  // namespace clustagg
