#include "core/aggregator.h"

#include <optional>
#include <string>
#include <utility>

#include "core/best_clustering.h"
#include "core/correlation_instance.h"
#include "core/instrumentation.h"
#include "core/signature_index.h"
#include "shard/shard_aggregator.h"

namespace clustagg {

const char* AggregationAlgorithmName(AggregationAlgorithm algorithm) {
  switch (algorithm) {
    case AggregationAlgorithm::kBestClustering:
      return "BESTCLUSTERING";
    case AggregationAlgorithm::kBalls:
      return "BALLS";
    case AggregationAlgorithm::kAgglomerative:
      return "AGGLOMERATIVE";
    case AggregationAlgorithm::kFurthest:
      return "FURTHEST";
    case AggregationAlgorithm::kLocalSearch:
      return "LOCALSEARCH";
    case AggregationAlgorithm::kPivot:
      return "CC-PIVOT";
    case AggregationAlgorithm::kAnnealing:
      return "ANNEALING";
    case AggregationAlgorithm::kMajority:
      return "MAJORITY";
    case AggregationAlgorithm::kExact:
      return "EXACT";
  }
  return "UNKNOWN";
}

Result<std::unique_ptr<CorrelationClusterer>> MakeClusterer(
    const AggregatorOptions& options) {
  switch (options.algorithm) {
    case AggregationAlgorithm::kBalls:
      return std::unique_ptr<CorrelationClusterer>(
          new BallsClusterer(options.balls));
    case AggregationAlgorithm::kAgglomerative:
      return std::unique_ptr<CorrelationClusterer>(
          new AgglomerativeClusterer(options.agglomerative));
    case AggregationAlgorithm::kFurthest:
      return std::unique_ptr<CorrelationClusterer>(
          new FurthestClusterer(options.furthest));
    case AggregationAlgorithm::kLocalSearch:
      return std::unique_ptr<CorrelationClusterer>(
          new LocalSearchClusterer(options.local_search));
    case AggregationAlgorithm::kPivot:
      return std::unique_ptr<CorrelationClusterer>(
          new PivotClusterer(options.pivot));
    case AggregationAlgorithm::kAnnealing:
      return std::unique_ptr<CorrelationClusterer>(
          new AnnealingClusterer(options.annealing));
    case AggregationAlgorithm::kMajority:
      return std::unique_ptr<CorrelationClusterer>(
          new MajorityClusterer(options.majority));
    case AggregationAlgorithm::kExact:
      return std::unique_ptr<CorrelationClusterer>(
          new ExactClusterer(options.exact));
    case AggregationAlgorithm::kBestClustering:
      return Status::InvalidArgument(
          "BESTCLUSTERING needs the original clusterings, not a "
          "correlation instance; call Aggregate or BestClustering directly");
  }
  return Status::InvalidArgument("unknown aggregation algorithm");
}

Result<AggregationResult> Aggregate(const ClusteringSet& input,
                                    const AggregatorOptions& options) {
  AggregationResult out;
  const RunContext& run = options.run;
  Telemetry* telemetry = run.telemetry();
  InstrumentedSpan aggregate_span(telemetry, "aggregate");
  TelemetrySetGauge(telemetry, "aggregate.num_objects",
                    static_cast<std::int64_t>(input.num_objects()));
  TelemetrySetGauge(telemetry, "aggregate.num_clusterings",
                    static_cast<std::int64_t>(input.num_clusterings()));

  if (options.algorithm == AggregationAlgorithm::kBestClustering) {
    InstrumentedSpan cluster_span(telemetry, "cluster");
    Result<BestClusteringResult> best =
        BestClustering(input, options.missing, run);
    if (!best.ok()) return best.status();
    out.clustering = std::move(best->clustering);
    out.total_disagreements = best->total_disagreements;
    out.outcome = best->outcome;
    return out;
  }

  // Shard-and-conquer routing: the objective decomposes exactly across
  // agreement-graph components (docs/sharding.md), so requested sharding
  // hands the whole pipeline to src/shard/. Sampling keeps precedence —
  // it already avoids the O(n^2) instance sharding exists to split.
  if (ShardingRequested(options.shard) && options.sampling_size == 0) {
    return ShardedAggregate(input, options);
  }

  // Degradation 1: the exact solver beyond its tractable size would be a
  // hard ResourceExhausted; aggregation callers prefer a good answer over
  // none, so swap in BALLS polished by LOCALSEARCH (the paper's
  // recommended refinement) and record the substitution.
  AggregatorOptions effective = options;
  if (options.max_cluster_size > 0) {
    effective.local_search.max_cluster_size = options.max_cluster_size;
  }
  if (options.allow_fallbacks &&
      options.algorithm == AggregationAlgorithm::kExact &&
      input.num_objects() > options.exact.max_objects) {
    effective.algorithm = AggregationAlgorithm::kBalls;
    effective.refine_with_local_search = true;
    out.fallbacks.push_back(
        "EXACT is intractable at n=" + std::to_string(input.num_objects()) +
        " (max " + std::to_string(options.exact.max_objects) +
        "); fell back to BALLS + LOCALSEARCH refinement");
    out.outcome = MergeOutcomes(out.outcome, RunOutcome::kFellBack);
    TelemetryCount(telemetry, "aggregate.fallback.exact_to_balls");
  }

  Result<std::unique_ptr<CorrelationClusterer>> clusterer =
      MakeClusterer(effective);
  if (!clusterer.ok()) return clusterer.status();

  // Sampling eligibility is decided by the *requested* algorithm, not the
  // effective one: sampling_size is documented as ignored for kExact, and
  // that must stay true when the exact solver degrades to BALLS above
  // (the recorded fallback promises "BALLS + LOCALSEARCH refinement",
  // which the sampling path would not deliver).
  const bool use_sampling =
      effective.sampling_size > 0 &&
      options.algorithm != AggregationAlgorithm::kExact;
  Result<Clustering> clustering = [&]() -> Result<Clustering> {
    if (use_sampling) {
      InstrumentedSpan cluster_span(telemetry, "cluster");
      SamplingOptions sampling = effective.sampling;
      sampling.sample_size = effective.sampling_size;
      sampling.missing = effective.missing;
      sampling.source.backend = effective.backend;
      sampling.source.num_threads = effective.num_threads;
      sampling.fold = effective.fold;
      Result<ClustererRun> sampled = SamplingAggregateControlled(
          input, **clusterer, run, sampling);
      if (!sampled.ok()) return sampled.status();
      out.outcome = MergeOutcomes(out.outcome, sampled->outcome);
      return std::move(sampled->clustering);
    }

    // Duplicate-signature folding: when it shrinks the instance, the
    // whole pipeline below (build, cluster, refine) runs in s-signature
    // space and the labels are expanded to object space at the end.
    std::optional<SignatureIndex> fold_index;
    if (effective.fold) {
      InstrumentedSpan fold_span(telemetry, "fold_index");
      SignatureIndex signatures = SignatureIndex::Build(input);
      out.fold_signatures = signatures.num_signatures();
      TelemetrySetGauge(
          telemetry, "aggregate.fold_signatures",
          static_cast<std::int64_t>(signatures.num_signatures()));
      if (!signatures.trivial()) {
        out.folded = true;
        TelemetryCount(telemetry, "aggregate.folds");
        fold_index.emplace(std::move(signatures));
      }
    }

    DistanceSourceOptions source_options{effective.backend,
                                         effective.num_threads, run};
    Result<CorrelationInstance> built = [&]() -> Result<CorrelationInstance> {
      InstrumentedSpan build_span(telemetry, "build_instance");
      auto build = [&]() {
        return fold_index
                   ? CorrelationInstance::BuildSubset(
                         input, fold_index->representatives(),
                         effective.missing, source_options)
                   : CorrelationInstance::Build(input, effective.missing,
                                                source_options);
      };
      Result<CorrelationInstance> first = build();
      if (!first.ok() && effective.backend == DistanceBackend::kDense &&
          effective.allow_fallbacks &&
          first.status().code() == StatusCode::kResourceExhausted) {
        // Degradation 2: the dense O(n^2/2) matrix did not fit (really, or
        // via an injected fault). The lazy backend answers bit-identically
        // from O(n m) memory, just slower per query.
        out.fallbacks.push_back(
            "dense backend allocation failed; retried with lazy backend");
        out.outcome = MergeOutcomes(out.outcome, RunOutcome::kFellBack);
        TelemetryCount(telemetry, "aggregate.fallback.dense_to_lazy");
        source_options.backend = DistanceBackend::kLazy;
        return build();
      }
      return first;
    }();
    if (built.ok() && fold_index) {
      // Re-wrap the folded source with the signature multiplicities so
      // every clusterer and reduction weighs each representative by the
      // originals it stands for.
      built = CorrelationInstance::FromSource(built->shared_source(),
                                              effective.num_threads,
                                              fold_index->multiplicities());
    }
    if (!built.ok()) {
      if (RunContext::IsInterrupt(built.status())) {
        // Degradation 3: the budget fired while the instance was still
        // being built; no distances → nothing was merged yet, so the
        // all-singletons partition is the honest best-so-far.
        out.fallbacks.push_back(
            "budget fired during instance construction; returning the "
            "all-singletons partition");
        out.outcome = MergeOutcomes(
            out.outcome, RunContext::OutcomeFromInterrupt(built.status()));
        TelemetryCount(telemetry, "aggregate.fallback.build_interrupted");
        return Clustering::AllSingletons(input.num_objects());
      }
      return built.status();
    }
    const CorrelationInstance& instance = *built;
    // Folded runs produce labels over the s signatures; expand maps them
    // back to the n objects (a no-op lambda otherwise).
    auto finish = [&](Clustering c) {
      return fold_index ? fold_index->Expand(c) : std::move(c);
    };
    Result<ClustererRun> result = [&] {
      InstrumentedSpan cluster_span(telemetry, "cluster");
      return (*clusterer)->RunControlled(instance, run);
    }();
    if (!result.ok()) return result.status();
    out.outcome = MergeOutcomes(out.outcome, result->outcome);
    if (effective.refine_with_local_search &&
        effective.algorithm != AggregationAlgorithm::kLocalSearch) {
      if (out.outcome == RunOutcome::kCancelled ||
          out.outcome == RunOutcome::kDeadlineExceeded) {
        // Degradation 4: no budget left for the polish; ship the
        // unrefined clustering.
        out.fallbacks.push_back(
            "budget fired before LOCALSEARCH refinement; returning the "
            "unrefined clustering");
        TelemetryCount(telemetry, "aggregate.fallback.refine_skipped");
        return finish(std::move(result->clustering));
      }
      InstrumentedSpan refine_span(telemetry, "refine");
      LocalSearchClusterer refiner(effective.local_search);
      Result<ClustererRun> refined =
          refiner.RunFromControlled(instance, result->clustering, run);
      if (!refined.ok()) return refined.status();
      out.outcome = MergeOutcomes(out.outcome, refined->outcome);
      return finish(std::move(refined->clustering));
    }
    return finish(std::move(result->clustering));
  }();
  if (!clustering.ok()) return clustering.status();

  InstrumentedSpan score_span(telemetry, "score");
  Result<double> disagreements =
      input.TotalDisagreements(*clustering, options.missing);
  if (!disagreements.ok()) return disagreements.status();
  TelemetrySetGauge(telemetry, "aggregate.clusters",
                    static_cast<std::int64_t>(clustering->NumClusters()));
  out.clustering = std::move(*clustering);
  out.total_disagreements = *disagreements;
  return out;
}

}  // namespace clustagg
