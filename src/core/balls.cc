#include "core/balls.h"

#include <algorithm>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "core/instrumentation.h"

namespace clustagg {

Result<ClustererRun> BallsClusterer::RunControlled(
    const CorrelationInstance& instance, const RunContext& run) const {
  if (options_.alpha < 0.0 || options_.alpha > 0.5) {
    return Status::InvalidArgument(
        "BALLS alpha must lie in [0, 0.5], got " +
        std::to_string(options_.alpha));
  }
  const std::size_t n = instance.size();
  RunOutcome outcome = RunOutcome::kConverged;

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (options_.sort_by_incident_weight) {
    Result<std::vector<double>> weights = instance.TotalIncidentWeights(run);
    if (weights.ok()) {
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return (*weights)[a] < (*weights)[b];
                       });
    } else if (RunContext::IsInterrupt(weights.status())) {
      // Partial incident weights would give a schedule-dependent order;
      // degrade to deterministic index order instead.
      outcome = RunContext::OutcomeFromInterrupt(weights.status());
    } else {
      return weights.status();
    }
  }

  std::vector<Clustering::Label> labels(n, Clustering::kMissing);
  Clustering::Label next_label = 0;
  std::vector<std::size_t> ball;
  std::vector<double> row(n);
  for (std::size_t u : order) {
    if (labels[u] != Clustering::kMissing) continue;
    run.ChargeIterations(1);
    if (outcome == RunOutcome::kConverged) {
      outcome = run.Poll();
    }
    if (outcome != RunOutcome::kConverged) {
      // Budget fired: every vertex still unclustered becomes a singleton,
      // the same shape BALLS gives vertices whose ball fails the test.
      labels[u] = next_label++;
      continue;
    }
    // Gather the ball: unclustered vertices within distance 1/2 of u.
    // One bulk row query per ball center keeps the lazy backend at one
    // O(n m) pass per opened cluster. Under folding each member counts
    // with its multiplicity, and the w_u - 1 originals folded into u
    // itself sit in the ball at distance 0 — so the weighted average
    // equals the unfolded ball average exactly. Unfolded instances have
    // every weight 1.0, reproducing the historical count arithmetic bit
    // for bit.
    instance.FillRow(u, row);
    ball.clear();
    double total = 0.0;
    double ball_weight = instance.multiplicity(u) - 1.0;
    for (std::size_t v = 0; v < n; ++v) {
      if (v == u || labels[v] != Clustering::kMissing) continue;
      const double x = row[v];
      if (x <= 0.5) {
        const double wv = instance.multiplicity(v);
        ball.push_back(v);
        total += wv * x;
        ball_weight += wv;
      }
    }
    const Clustering::Label cluster = next_label++;
    labels[u] = cluster;
    if (ball_weight > 0.0 && total / ball_weight <= options_.alpha) {
      for (std::size_t v : ball) labels[v] = cluster;
      TelemetryCount(run.telemetry(), "balls.balls_accepted");
      TelemetryCount(run.telemetry(), "balls.members_absorbed", ball.size());
    } else {
      // u stays a singleton and the ball members remain available to
      // later vertices.
      TelemetryCount(run.telemetry(), "balls.balls_rejected");
    }
    TelemetryCount(run.telemetry(), "balls.clusters_opened");
  }
  return ClustererRun{Clustering(std::move(labels)).Normalized(), outcome};
}

}  // namespace clustagg
