#ifndef CLUSTAGG_CORE_DISAGREEMENT_H_
#define CLUSTAGG_CORE_DISAGREEMENT_H_

#include <cstdint>

#include "common/status.h"
#include "core/clustering.h"

namespace clustagg {

/// Disagreement distance between two *complete* clusterings (Section 3 of
/// the paper): the number of unordered object pairs (u, v) that one
/// clustering places together and the other apart. Satisfies the triangle
/// inequality (Observation 1).
///
/// The paper's worked example (Figure 1) counts unordered pairs — e.g.
/// C_1 vs. the optimum disagrees on exactly the four pairs listed — so we
/// count unordered pairs throughout; double the value for the ordered
/// V x V formulation.

/// Reference implementation straight from the definition; O(n^2). Used as
/// a testing oracle and in micro-benchmarks.
Result<std::uint64_t> DisagreementDistanceNaive(const Clustering& a,
                                                const Clustering& b);

/// Pair-counting implementation via the contingency table of the two
/// clusterings; O(n + K_a * K_b) time. The disagreement count equals
///   pairs(a) + pairs(b) - 2 * joint_pairs(a, b)
/// where pairs(x) is the number of co-clustered pairs of x and
/// joint_pairs counts pairs co-clustered in both.
Result<std::uint64_t> DisagreementDistance(const Clustering& a,
                                           const Clustering& b);

/// Number of unordered pairs co-clustered by `c`. Requires a complete
/// clustering.
Result<std::uint64_t> CoClusteredPairs(const Clustering& c);

}  // namespace clustagg

#endif  // CLUSTAGG_CORE_DISAGREEMENT_H_
