#ifndef CLUSTAGG_CORE_AGGREGATOR_H_
#define CLUSTAGG_CORE_AGGREGATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/run_context.h"
#include "common/status.h"
#include "core/agglomerative.h"
#include "core/annealing.h"
#include "core/balls.h"
#include "core/clusterer.h"
#include "core/clustering_set.h"
#include "core/exact.h"
#include "core/furthest.h"
#include "core/local_search.h"
#include "core/majority.h"
#include "core/pivot.h"
#include "core/sampling.h"
#include "shard/shard_options.h"

namespace clustagg {

/// Selector for the aggregation algorithm used by the Aggregate facade.
enum class AggregationAlgorithm {
  kBestClustering,
  kBalls,
  kAgglomerative,
  kFurthest,
  kLocalSearch,
  /// CC-PIVOT (Ailon-Charikar-Newman) — the randomized-pivot extension.
  kPivot,
  /// Simulated annealing (Filkov & Skiena) — the related-work
  /// metaheuristic.
  kAnnealing,
  /// Co-association majority baseline (Fred & Jain) — for comparison.
  kMajority,
  /// Exhaustive optimum; only for tiny inputs (see ExactOptions).
  kExact,
};

const char* AggregationAlgorithmName(AggregationAlgorithm algorithm);

/// One-stop options for the Aggregate facade.
struct AggregatorOptions {
  AggregationAlgorithm algorithm = AggregationAlgorithm::kAgglomerative;

  /// Per-algorithm knobs (only the selected algorithm's options matter).
  BallsOptions balls;
  AgglomerativeOptions agglomerative;
  FurthestOptions furthest;
  LocalSearchOptions local_search;
  PivotOptions pivot;
  AnnealingOptions annealing;
  MajorityOptions majority;
  ExactOptions exact;

  /// Missing-value policy for building the correlation instance.
  MissingValueOptions missing;

  /// Distance backend carrying the instance: kDense materializes the
  /// packed O(n^2/2) matrix (fastest for repeated queries), kLazy keeps
  /// only O(n*m) label columns and recomputes X_uv on demand (removes the
  /// quadratic memory floor). Both produce identical results.
  DistanceBackend backend = DistanceBackend::kDense;

  /// Threads for parallel dense construction and the instance's parallel
  /// reductions. 0 means one per hardware core.
  std::size_t num_threads = 0;

  /// Post-process the result with LOCALSEARCH (Section 4 recommends it as
  /// a refinement step; not applied when the algorithm already is
  /// LOCALSEARCH or EXACT).
  bool refine_with_local_search = false;

  /// If nonzero, run via SAMPLING with this sample size instead of
  /// building the full O(n^2) instance (Section 4.1). Ignored for
  /// kBestClustering and kExact.
  std::size_t sampling_size = 0;
  SamplingOptions sampling;

  /// Opt-in duplicate-signature folding: group objects whose full m-label
  /// tuple is identical across the inputs (SignatureIndex), build the
  /// s x s instance over one representative per signature with the group
  /// sizes as multiplicity weights, run the clusterer there, and expand
  /// the labels back to object space. Exact — duplicates have pairwise
  /// distance 0 and identical distance rows, so the folded objective
  /// equals the original one — and a documented no-op when every object
  /// is unique (s == n), where the full instance is built as usual.
  /// Categorical datasets shaped like the paper's Mushrooms / Census
  /// evaluations shrink dramatically (dense build O(n^2 m) -> O(s^2 m)).
  /// Under sampling, the sampled sub-instances are folded instead.
  /// Ignored for kBestClustering (which never builds an instance).
  bool fold = false;

  /// Shard-and-conquer pipeline (src/shard/, docs/sharding.md): stream
  /// the agreement graph (pairs with X_uv < 1/2), solve its connected
  /// components — split when oversized — as independent shards in
  /// parallel, and stitch. Exact across true components; forced splits
  /// are covered by the exact AggregationResult::stitch_error_bound.
  /// Composes with fold (decomposition runs in signature space) and the
  /// backend choice (per shard). Ignored under sampling_size > 0 — the
  /// sampling path already avoids the O(n^2) instance — and for
  /// kBestClustering, which never builds one.
  ShardOptions shard;

  /// Size-capped clusters as a LOCALSEARCH move filter (Puleo &
  /// Milenkovic): when nonzero, sweeps reject any move that would grow a
  /// cluster beyond this many objects, both for kLocalSearch runs and
  /// for the refine_with_local_search polish. Under folding the cap
  /// counts original objects (fold multiplicities), not representatives.
  /// A filter, not a repair: starting partitions already violating the
  /// cap (Init::kSingleCluster, an oversized refine input) are only
  /// shrunk when doing so lowers the cost. 0 = uncapped.
  std::size_t max_cluster_size = 0;

  /// Wall-clock / iteration budget, cancellation flag, and fault hooks
  /// for the whole pipeline (instance build, clustering, refinement).
  /// Default: unlimited. When the budget fires the pipeline returns the
  /// best valid clustering reached so far, tagged in the result, instead
  /// of an error. Final scoring (TotalDisagreements) runs outside the
  /// budget: the coin-policy path is O(m (n + K^2)) and a report without
  /// E_D would be useless.
  RunContext run;

  /// Allow the graceful-degradation chain: dense-backend allocation
  /// failure retries on the lazy backend, and EXACT beyond its tractable
  /// size falls back to BALLS + LOCALSEARCH refinement. Each taken
  /// fallback is recorded in AggregationResult::fallbacks. Off = those
  /// conditions stay hard errors.
  bool allow_fallbacks = true;
};

/// Result of an aggregation run.
struct AggregationResult {
  Clustering clustering;
  /// Total (expected) disagreements D(C) with the inputs — the E_D
  /// reported in the paper's tables.
  double total_disagreements = 0.0;
  /// How the run ended: kConverged normally; kDeadlineExceeded /
  /// kCancelled when the budget cut it short (clustering is then the best
  /// found so far); kFellBack when a degradation fallback was taken but
  /// the run otherwise completed.
  RunOutcome outcome = RunOutcome::kConverged;
  /// Human-readable notes, one per degradation taken (e.g.
  /// "dense backend allocation failed; retried with lazy backend").
  std::vector<std::string> fallbacks;
  /// True when AggregatorOptions::fold was on and actually shrank the
  /// instance (s < n distinct signatures). False when folding was off,
  /// was a no-op (every object unique), or the run went through sampling
  /// (whose per-subset folds are not surfaced here).
  bool folded = false;
  /// Number of distinct signatures s found when folding was requested
  /// (== num_objects when the fold was a no-op); 0 when folding was off
  /// or the run went through sampling.
  std::size_t fold_signatures = 0;
  /// True when the run went through the sharding pipeline (src/shard/):
  /// decompose, per-shard solve, stitch. False when sharding was off, the
  /// kAuto trigger did not fire, or a fallback abandoned the plan.
  bool sharded = false;
  /// Number of shards solved (only meaningful when sharded).
  std::size_t shard_count = 0;
  /// Connected components the agreement graph decomposed into (in
  /// signature space when folding was active; only when sharded).
  std::size_t shard_components = 0;
  /// Exact upper bound on the cost excess attributable to sharding: the
  /// total weight sum over cut agreement pairs of (1 - 2 X_uv), zero
  /// unless the size cap forced a component split (docs/sharding.md).
  /// Whatever the unsharded pipeline would have found, total_disagreements
  /// of a locally optimal sharded run exceeds it by at most this much.
  double stitch_error_bound = 0.0;
};

/// Instantiates the requested correlation clusterer (not
/// kBestClustering, which is not a correlation clusterer).
Result<std::unique_ptr<CorrelationClusterer>> MakeClusterer(
    const AggregatorOptions& options);

/// Aggregates the input clusterings with the selected algorithm: builds
/// the correlation instance (or samples), clusters, optionally refines
/// with local search, and scores the result.
Result<AggregationResult> Aggregate(const ClusteringSet& input,
                                    const AggregatorOptions& options = {});

}  // namespace clustagg

#endif  // CLUSTAGG_CORE_AGGREGATOR_H_
