#include "core/hierarchy.h"

#include <algorithm>
#include <limits>
#include <string>

#include "common/check.h"
#include "common/union_find.h"
#include "core/instrumentation.h"

namespace clustagg {

const char* LinkageName(Linkage linkage) {
  switch (linkage) {
    case Linkage::kSingle:
      return "single";
    case Linkage::kComplete:
      return "complete";
    case Linkage::kAverage:
      return "average";
    case Linkage::kWard:
      return "ward";
  }
  return "unknown";
}

Clustering Dendrogram::CutAtHeight(double threshold) const {
  UnionFind uf(num_leaves);
  for (const Merge& m : merges) {
    if (m.height < threshold) uf.Union(m.left, m.right);
  }
  return Clustering(uf.ComponentLabels());
}

Result<Clustering> Dendrogram::CutAtK(std::size_t k) const {
  if (k < 1 || k > num_leaves) {
    return Status::InvalidArgument("k=" + std::to_string(k) +
                                   " outside [1, " +
                                   std::to_string(num_leaves) + "]");
  }
  UnionFind uf(num_leaves);
  const std::size_t merges_to_apply = num_leaves - k;
  if (merges_to_apply > merges.size()) {
    return Status::FailedPrecondition(
        "partial dendrogram holds " + std::to_string(merges.size()) +
        " merges, need " + std::to_string(merges_to_apply) + " for k=" +
        std::to_string(k));
  }
  for (std::size_t i = 0; i < merges_to_apply; ++i) {
    uf.Union(merges[i].left, merges[i].right);
  }
  return Clustering(uf.ComponentLabels());
}

namespace {

/// Lance-Williams distance update: the distance from the merge of
/// clusters a and b (sizes sa, sb) to another cluster k (size sk), given
/// the three pre-merge distances.
double LanceWilliams(Linkage linkage, double dak, double dbk, double dab,
                     double sa, double sb, double sk) {
  switch (linkage) {
    case Linkage::kSingle:
      return std::min(dak, dbk);
    case Linkage::kComplete:
      return std::max(dak, dbk);
    case Linkage::kAverage:
      return (sa * dak + sb * dbk) / (sa + sb);
    case Linkage::kWard:
      return ((sa + sk) * dak + (sb + sk) * dbk - sk * dab) / (sa + sb + sk);
  }
  CLUSTAGG_CHECK(false);
  return 0.0;
}

}  // namespace

Result<Dendrogram> AgglomerateFull(SymmetricMatrix<double> distances,
                                   Linkage linkage,
                                   std::vector<double> initial_sizes,
                                   const RunContext& run,
                                   RunOutcome* outcome) {
  if (outcome != nullptr) *outcome = RunOutcome::kConverged;
  const std::size_t n = distances.size();
  if (n == 0) {
    return Status::InvalidArgument("cannot agglomerate an empty instance");
  }
  if (initial_sizes.empty()) {
    initial_sizes.assign(n, 1.0);
  } else if (initial_sizes.size() != n) {
    return Status::InvalidArgument("initial_sizes has " +
                                   std::to_string(initial_sizes.size()) +
                                   " entries, expected " + std::to_string(n));
  }

  Dendrogram dendrogram;
  dendrogram.num_leaves = n;
  if (n == 1) return dendrogram;
  dendrogram.merges.reserve(n - 1);

  // Nearest-neighbor-chain over cluster slots 0..n-1. A merge keeps the
  // smaller slot active and deactivates the other. Reducible linkages
  // guarantee this produces the same merge set as global greedy merging.
  //
  // Active slots live in a compacted ascending array, so the O(#active)
  // neighbor scans and Lance-Williams updates shrink with every merge
  // instead of walking all n slots (half of which are dead by the
  // midpoint of the run). Ascending order preserves the historical scan
  // order, so the tie-breaking — and therefore the merge sequence — is
  // unchanged.
  std::vector<double> sizes = std::move(initial_sizes);
  // Representative leaf of each slot's current cluster (for the merge
  // records).
  std::vector<std::size_t> rep(n);
  for (std::size_t i = 0; i < n; ++i) rep[i] = i;
  std::vector<std::size_t> active_slots(n);
  for (std::size_t i = 0; i < n; ++i) active_slots[i] = i;

  std::vector<std::size_t> chain;
  chain.reserve(n);

  while (active_slots.size() > 1) {
    // One poll per merge: each merge costs O(#active), so the check
    // interval stays bounded whatever the instance size.
    run.ChargeIterations(1);
    const RunOutcome poll = run.Poll();
    if (poll != RunOutcome::kConverged) {
      if (outcome != nullptr) *outcome = poll;
      break;
    }
    if (chain.empty()) {
      chain.push_back(active_slots.front());
    }
    for (;;) {
      const std::size_t c = chain.back();
      // Nearest active neighbor of c; prefer the chain predecessor on
      // ties so that mutual nearest neighbors are detected.
      std::size_t best = std::numeric_limits<std::size_t>::max();
      double best_dist = std::numeric_limits<double>::infinity();
      const std::size_t prev =
          chain.size() >= 2 ? chain[chain.size() - 2] : best;
      for (std::size_t k : active_slots) {
        if (k == c) continue;
        const double d = distances(c, k);
        if (d < best_dist || (d == best_dist && k == prev)) {
          best_dist = d;
          best = k;
        }
      }
      if (best == prev) {
        // Mutual nearest neighbors: merge c and prev.
        chain.pop_back();
        chain.pop_back();
        const std::size_t a = std::min(c, prev);
        const std::size_t b = std::max(c, prev);
        dendrogram.merges.push_back({rep[a], rep[b], best_dist});
        // Merge trajectory: (merge step, linkage distance of the pair
        // merged, clusters remaining after the merge). Note the NN-chain
        // discovers merges out of height order; the trace preserves
        // discovery order.
        TelemetryTracePoint(run.telemetry(), "agglomerative",
                            dendrogram.merges.size() - 1, best_dist,
                            active_slots.size() - 1);
        TelemetryCount(run.telemetry(), "agglomerative.merges");
        const double sa = sizes[a];
        const double sb = sizes[b];
        const double dab = distances(a, b);
        for (std::size_t k : active_slots) {
          if (k == a || k == b) continue;
          distances.Set(
              a, k,
              LanceWilliams(linkage, distances(a, k), distances(b, k), dab,
                            sa, sb, sizes[k]));
        }
        sizes[a] = sa + sb;
        active_slots.erase(std::lower_bound(active_slots.begin(),
                                            active_slots.end(), b));
        break;
      }
      chain.push_back(best);
    }
  }

  // NN-chain discovers merges out of height order; sort ascending. For
  // monotone linkages a stable sort keeps every merge after the merges
  // that formed its children (children have strictly smaller height, or
  // equal height and earlier discovery).
  std::stable_sort(dendrogram.merges.begin(), dendrogram.merges.end(),
                   [](const Dendrogram::Merge& x, const Dendrogram::Merge& y) {
                     return x.height < y.height;
                   });
  return dendrogram;
}

}  // namespace clustagg
