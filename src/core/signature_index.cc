#include "core/signature_index.h"

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "core/internal/packed_labels.h"

namespace clustagg {

namespace {

/// FNV-1a over an object's m-label row. Collisions are resolved by full
/// row comparison, so the hash only affects speed, never the grouping.
std::uint64_t HashRow(const Clustering::Label* row, std::size_t m) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < m; ++i) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(row[i]));
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

SignatureIndex SignatureIndex::Build(const ClusteringSet& input) {
  return BuildImpl(input, nullptr);
}

SignatureIndex SignatureIndex::BuildSubset(
    const ClusteringSet& input, const std::vector<std::size_t>& subset) {
  for (std::size_t v : subset) CLUSTAGG_CHECK(v < input.num_objects());
  return BuildImpl(input, &subset);
}

SignatureIndex SignatureIndex::BuildImpl(
    const ClusteringSet& input, const std::vector<std::size_t>* subset) {
  const std::size_t n =
      subset != nullptr ? subset->size() : input.num_objects();
  const std::size_t m = input.num_clusterings();

  // Object-major label rows, gathered once so hashing and collision
  // checks touch contiguous memory.
  std::vector<Clustering::Label> rows(n * m);
  for (std::size_t i = 0; i < m; ++i) {
    const Clustering& c = input.clustering(i);
    Clustering::Label* out = rows.data() + i;
    for (std::size_t v = 0; v < n; ++v) {
      out[v * m] = c.label(subset != nullptr ? (*subset)[v] : v);
    }
  }

  // Packed signature rows: only whole-row *equality* matters here, so
  // the kMissing sentinel packs like any other symbol and the packed
  // words can stand in for the rows in both hashing and the collision
  // check (the per-column remap is injective). Grouping and signature
  // numbering are identical either way — the packed path is ~m fewer
  // word ops per object for hashing and per candidate for comparison.
  std::unique_ptr<internal::PackedLabels> packed;
  if (internal::ActivePackedKernelTier() !=
      internal::PackedKernelTier::kPortable) {
    packed = internal::PackLabelRows(rows.data(), n, m);
  }

  SignatureIndex index;
  index.signature_of_.resize(n);
  // hash -> signature ids sharing it. Objects are scanned in ascending
  // order, so signature ids follow first appearance deterministically.
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> buckets;
  buckets.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    const Clustering::Label* row = rows.data() + v * m;
    std::vector<std::size_t>& bucket =
        buckets[packed != nullptr ? internal::HashPackedRow(*packed, v)
                                  : HashRow(row, m)];
    std::size_t signature = static_cast<std::size_t>(-1);
    for (std::size_t candidate : bucket) {
      const std::size_t rep = index.rep_subset_index_[candidate];
      bool equal;
      if (packed != nullptr) {
        equal = internal::PackedRowsEqual(*packed, v, rep);
      } else {
        const Clustering::Label* rep_row = rows.data() + rep * m;
        equal = true;
        for (std::size_t i = 0; i < m; ++i) {
          if (row[i] != rep_row[i]) {
            equal = false;
            break;
          }
        }
      }
      if (equal) {
        signature = candidate;
        break;
      }
    }
    if (signature == static_cast<std::size_t>(-1)) {
      signature = index.representative_.size();
      index.representative_.push_back(subset != nullptr ? (*subset)[v] : v);
      index.rep_subset_index_.push_back(v);
      index.multiplicity_.push_back(0.0);
      bucket.push_back(signature);
    }
    index.signature_of_[v] = signature;
    index.multiplicity_[signature] += 1.0;
  }
  return index;
}

Clustering SignatureIndex::Expand(const Clustering& folded) const {
  CLUSTAGG_CHECK(folded.size() == num_signatures());
  std::vector<Clustering::Label> labels(num_objects());
  for (std::size_t v = 0; v < labels.size(); ++v) {
    labels[v] = folded.label(signature_of_[v]);
  }
  Clustering expanded(std::move(labels));
  expanded.Normalize();
  return expanded;
}

}  // namespace clustagg
