#include "core/majority.h"

#include <string>
#include <utility>
#include <vector>

#include "common/union_find.h"
#include "core/instrumentation.h"

namespace clustagg {

Result<ClustererRun> MajorityClusterer::RunControlled(
    const CorrelationInstance& instance, const RunContext& run) const {
  if (options_.link_threshold < 0.0 || options_.link_threshold > 1.0) {
    return Status::InvalidArgument("link_threshold must lie in [0, 1]");
  }
  const std::size_t n = instance.size();
  UnionFind uf(n);
  std::vector<double> row(n);
  RunOutcome outcome = RunOutcome::kConverged;
  std::uint64_t links = 0;
  for (std::size_t u = 0; u < n; ++u) {
    run.ChargeIterations(1);
    if ((outcome = run.Poll()) != RunOutcome::kConverged) break;
    instance.FillRow(u, row);
    for (std::size_t v = u + 1; v < n; ++v) {
      if (row[v] < options_.link_threshold) {
        uf.Union(u, v);
        ++links;
      }
    }
  }
  TelemetryCount(run.telemetry(), "majority.links", links);
  // A partial link scan still yields a valid partition: unseen pairs are
  // simply left unlinked, as if they fell below the majority.
  return ClustererRun{Clustering(uf.ComponentLabels()), outcome};
}

}  // namespace clustagg
