#include "core/majority.h"

#include <string>
#include <vector>

#include "common/union_find.h"

namespace clustagg {

Result<Clustering> MajorityClusterer::Run(
    const CorrelationInstance& instance) const {
  if (options_.link_threshold < 0.0 || options_.link_threshold > 1.0) {
    return Status::InvalidArgument("link_threshold must lie in [0, 1]");
  }
  const std::size_t n = instance.size();
  UnionFind uf(n);
  std::vector<double> row(n);
  for (std::size_t u = 0; u < n; ++u) {
    instance.FillRow(u, row);
    for (std::size_t v = u + 1; v < n; ++v) {
      if (row[v] < options_.link_threshold) {
        uf.Union(u, v);
      }
    }
  }
  return Clustering(uf.ComponentLabels());
}

}  // namespace clustagg
