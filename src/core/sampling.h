#ifndef CLUSTAGG_CORE_SAMPLING_H_
#define CLUSTAGG_CORE_SAMPLING_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"
#include "core/clusterer.h"
#include "core/clustering.h"
#include "core/clustering_set.h"
#include "core/distance_source.h"

namespace clustagg {

/// Options for the SAMPLING meta-algorithm.
struct SamplingOptions {
  /// Number of objects sampled uniformly at random for the expensive
  /// aggregation phase. 0 picks the Chernoff-guided default
  /// `sample_log_factor * ln(n)`, which hits every constant-fraction
  /// cluster with high probability (Section 4.1).
  std::size_t sample_size = 0;

  /// Multiplier for the ln(n) default; larger values trade running time
  /// for a better chance of sampling small clusters.
  double sample_log_factor = 50.0;

  /// Seed for the uniform sample.
  std::uint64_t seed = 1;

  /// Re-run the base algorithm on the singleton clusters produced by the
  /// assignment phase (the paper's post-processing; without it small
  /// clusters shatter into singletons).
  bool recluster_singletons = true;

  /// Missing-value policy used when computing on-the-fly distances.
  MissingValueOptions missing;

  /// Backend and thread count for the quadratic sample (and singleton
  /// re-clustering) instances. The sample is small by design, so dense is
  /// almost always right; the knob exists so a caller can run the whole
  /// pipeline matrix-free.
  DistanceSourceOptions source;

  /// Fold duplicate signatures inside the sampled (and singleton
  /// re-clustering) sub-instances: objects of the subset whose full
  /// m-label tuple is identical are clustered as one weighted
  /// representative and expanded back afterwards (see SignatureIndex).
  /// Exact; a no-op when every subset member is unique.
  bool fold = false;
};

/// Diagnostics from a SAMPLING run (used by the Figure 5 benches).
struct SamplingStats {
  std::size_t sample_size = 0;
  std::size_t singletons_after_assignment = 0;
  double sample_phase_seconds = 0.0;
  double assign_phase_seconds = 0.0;
  double recluster_phase_seconds = 0.0;
};

/// The SAMPLING meta-algorithm (Section 4.1): aggregate a uniform sample
/// with `base`, assign every non-sampled object to the cluster of the
/// sample minimizing the correlation cost (or to a singleton), then
/// collect all singletons and aggregate them again with `base`. Pre- and
/// post-processing are O(n * sample_size * m); only the sample pays the
/// quadratic cost.
Result<Clustering> SamplingAggregate(const ClusteringSet& input,
                                     const CorrelationClusterer& base,
                                     const SamplingOptions& options = {},
                                     SamplingStats* stats = nullptr);

/// Budgeted SAMPLING: `run` is threaded into the sample instance build,
/// the base algorithm's runs, the assignment loop (polled every few
/// objects), and the singleton re-clustering. Whenever the budget fires
/// the pipeline degrades instead of erroring: objects not yet assigned
/// become singletons and the re-clustering phase is skipped; the returned
/// outcome records the earliest interruption.
Result<ClustererRun> SamplingAggregateControlled(
    const ClusteringSet& input, const CorrelationClusterer& base,
    const RunContext& run, const SamplingOptions& options = {},
    SamplingStats* stats = nullptr);

}  // namespace clustagg

#endif  // CLUSTAGG_CORE_SAMPLING_H_
