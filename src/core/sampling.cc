#include "core/sampling.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/correlation_instance.h"
#include "core/instrumentation.h"
#include "core/signature_index.h"

namespace clustagg {

namespace {

/// Precomputed per-(cluster, input-clustering) label histograms that turn
/// the assignment-phase sum M(v, C_j) = sum_{u in C_j} X_vu into an O(m)
/// lookup instead of an O(|C_j| * m) scan:
///   sum_{u in C_j} [label_i(u) != label_i(v)]
///     = present_{i,j} - count_{i,j}[label_i(v)],
/// plus the expected (1 - p) per member without a label under the coin
/// policy. Only valid for MissingValuePolicy::kRandomCoin (the kIgnore
/// policy normalizes per pair and does not decompose).
class AssignmentIndex {
 public:
  AssignmentIndex(const ClusteringSet& input,
                  const std::vector<std::vector<std::size_t>>& clusters,
                  double coin_together_probability)
      : input_(input),
        num_clusterings_(input.num_clusterings()),
        expected_missing_(1.0 - coin_together_probability) {
    const std::size_t k = clusters.size();
    sizes_.resize(k);
    missing_.assign(k, std::vector<double>(num_clusterings_, 0.0));
    counts_.assign(k, std::vector<std::unordered_map<Clustering::Label,
                                                     double>>(
                          num_clusterings_));
    for (std::size_t j = 0; j < k; ++j) {
      sizes_[j] = static_cast<double>(clusters[j].size());
      for (std::size_t i = 0; i < num_clusterings_; ++i) {
        const Clustering& c = input.clustering(i);
        for (std::size_t u : clusters[j]) {
          if (c.has_label(u)) {
            counts_[j][i][c.label(u)] += 1.0;
          } else {
            missing_[j][i] += 1.0;
          }
        }
      }
    }
    // (Per-clustering weights are applied in M(); the histograms hold
    // raw member counts.)
  }

  /// M(v, C_j) under the coin policy.
  double M(std::size_t v, std::size_t j) const {
    double total = 0.0;
    for (std::size_t i = 0; i < num_clusterings_; ++i) {
      const Clustering& c = input_.clustering(i);
      const double present = sizes_[j] - missing_[j][i];
      double contribution;
      if (!c.has_label(v)) {
        // v is unlabeled: the coin applies against every member.
        contribution = expected_missing_ * sizes_[j];
      } else {
        double same = 0.0;
        const auto it = counts_[j][i].find(c.label(v));
        if (it != counts_[j][i].end()) same = it->second;
        contribution =
            (present - same) + expected_missing_ * missing_[j][i];
      }
      total += input_.weight(i) * contribution;
    }
    return total / input_.total_weight();
  }

 private:
  const ClusteringSet& input_;
  std::size_t num_clusterings_;
  double expected_missing_;
  std::vector<double> sizes_;
  // missing_[cluster][clustering] = members without a label.
  std::vector<std::vector<double>> missing_;
  // counts_[cluster][clustering][label] = members with that label.
  std::vector<std::vector<std::unordered_map<Clustering::Label, double>>>
      counts_;
};

/// Relabels `final_labels[member]` for each object of `sub_clustering`
/// (which partitions `members`) with fresh labels starting at
/// `*next_label`.
void ApplySubClustering(const Clustering& sub_clustering,
                        const std::vector<std::size_t>& members,
                        std::vector<Clustering::Label>* final_labels,
                        Clustering::Label* next_label) {
  const Clustering norm = sub_clustering.Normalized();
  Clustering::Label max_label = -1;
  for (std::size_t i = 0; i < members.size(); ++i) {
    const Clustering::Label l = norm.label(i);
    CLUSTAGG_CHECK(l != Clustering::kMissing);
    (*final_labels)[members[i]] = *next_label + l;
    max_label = std::max(max_label, l);
  }
  *next_label += max_label + 1;
}

/// Builds the correlation instance over `subset` — folded to one weighted
/// representative per duplicate signature when `opts.fold` is on and the
/// subset actually has duplicates — runs `base` on it, and expands folded
/// labels back to subset space, so the caller always receives a clustering
/// of subset.size() objects. Clusterer runs degrade internally (they
/// return an outcome, not an interrupt status), so any interrupt status
/// escaping here came from the instance build.
Result<ClustererRun> RunBaseOnSubset(const ClusteringSet& input,
                                     const CorrelationClusterer& base,
                                     const RunContext& run,
                                     const SamplingOptions& opts,
                                     const std::vector<std::size_t>& subset) {
  std::optional<SignatureIndex> fold;
  if (opts.fold) {
    SignatureIndex signatures = SignatureIndex::BuildSubset(input, subset);
    if (!signatures.trivial()) {
      TelemetryCount(run.telemetry(), "sampling.folds");
      fold.emplace(std::move(signatures));
    }
  }
  Result<CorrelationInstance> instance =
      CorrelationInstance::BuildSubset(
          input, fold ? fold->representatives() : subset, opts.missing,
          opts.source);
  if (!instance.ok()) return instance.status();
  if (fold) {
    instance = CorrelationInstance::FromSource(instance->shared_source(),
                                               opts.source.num_threads,
                                               fold->multiplicities());
    if (!instance.ok()) return instance.status();
  }
  Result<ClustererRun> result = base.RunControlled(*instance, run);
  if (!result.ok()) return result.status();
  if (fold) result->clustering = fold->Expand(result->clustering);
  return result;
}

}  // namespace

Result<Clustering> SamplingAggregate(const ClusteringSet& input,
                                     const CorrelationClusterer& base,
                                     const SamplingOptions& options,
                                     SamplingStats* stats) {
  Result<ClustererRun> run =
      SamplingAggregateControlled(input, base, RunContext(), options, stats);
  if (!run.ok()) return run.status();
  return std::move(run->clustering);
}

Result<ClustererRun> SamplingAggregateControlled(
    const ClusteringSet& input, const CorrelationClusterer& base,
    const RunContext& run, const SamplingOptions& options,
    SamplingStats* stats) {
  const std::size_t n = input.num_objects();
  if (n == 0) return ClustererRun{Clustering(), RunOutcome::kConverged};

  // Thread the budget into the subset-instance builds (their dense fill
  // is the quadratic part of the pipeline) unless the caller already set
  // a budget of their own there.
  SamplingOptions opts = options;
  if (!run.unlimited() && opts.source.run.unlimited()) {
    opts.source.run = run;
  }
  RunOutcome outcome = RunOutcome::kConverged;

  std::size_t sample_size = opts.sample_size;
  if (sample_size == 0) {
    sample_size = static_cast<std::size_t>(std::llround(
        opts.sample_log_factor * std::log(static_cast<double>(n) + 1.0)));
  }
  sample_size = std::clamp<std::size_t>(sample_size, std::min<std::size_t>(
      n, 2), n);
  if (stats != nullptr) *stats = SamplingStats{};
  if (stats != nullptr) stats->sample_size = sample_size;
  Telemetry* telemetry = run.telemetry();
  TelemetrySetGauge(telemetry, "sampling.sample_size",
                    static_cast<std::int64_t>(sample_size));

  Stopwatch watch;

  // Phase 1: aggregate a uniform sample.
  const std::size_t sample_span = TelemetryBeginSpan(telemetry,
                                                     "sampling.sample");
  Rng rng(opts.seed);
  std::vector<std::size_t> sample = rng.SampleWithoutReplacement(n,
                                                                 sample_size);
  std::sort(sample.begin(), sample.end());
  Result<ClustererRun> sample_run =
      RunBaseOnSubset(input, base, run, opts, sample);
  if (!sample_run.ok()) {
    if (RunContext::IsInterrupt(sample_run.status())) {
      // The sample instance build was cut short; nothing was clustered
      // yet, so all singletons is the valid floor.
      return ClustererRun{
          Clustering::AllSingletons(n),
          RunContext::OutcomeFromInterrupt(sample_run.status())};
    }
    return sample_run.status();
  }
  outcome = MergeOutcomes(outcome, sample_run->outcome);
  const Clustering& sample_clustering = sample_run->clustering;
  if (stats != nullptr) stats->sample_phase_seconds = watch.ElapsedSeconds();
  watch.Restart();
  TelemetryEndSpan(telemetry, sample_span);
  const std::size_t assign_span = TelemetryBeginSpan(telemetry,
                                                     "sampling.assign");

  // Cluster member lists in *global* object ids.
  std::vector<std::vector<std::size_t>> clusters;
  for (const std::vector<std::size_t>& members :
       sample_clustering.Clusters()) {
    std::vector<std::size_t> global;
    global.reserve(members.size());
    for (std::size_t i : members) global.push_back(sample[i]);
    clusters.push_back(std::move(global));
  }

  // Phase 2: assign every non-sampled object to the sample cluster that
  // incurs the least correlation cost, or to a fresh singleton, using the
  // same bookkeeping identity as LOCALSEARCH:
  //   join(j) = T + 2 M(v, C_j) - |C_j|,   singleton = T,
  // with T = sum_j (|C_j| - M(v, C_j)).
  std::vector<Clustering::Label> final_labels(n, Clustering::kMissing);
  for (std::size_t j = 0; j < clusters.size(); ++j) {
    for (std::size_t v : clusters[j]) {
      final_labels[v] = static_cast<Clustering::Label>(j);
    }
  }
  Clustering::Label next_label =
      static_cast<Clustering::Label>(clusters.size());

  std::vector<bool> in_sample(n, false);
  for (std::size_t v : sample) in_sample[v] = true;

  // Histogram index for the fast O(m)-per-cluster path (coin policy).
  const bool use_index =
      opts.missing.policy == MissingValuePolicy::kRandomCoin;
  std::unique_ptr<AssignmentIndex> index;
  if (use_index) {
    index = std::make_unique<AssignmentIndex>(
        input, clusters, opts.missing.coin_together_probability);
  }

  std::vector<std::size_t> singleton_objects;
  std::vector<double> m_row(clusters.size());
  for (std::size_t v = 0; v < n; ++v) {
    if (in_sample[v]) continue;
    // Each object costs O(k m); poll every 16 so the interval stays
    // bounded. Objects past an interrupt become singletons — the same
    // fallback the assignment itself uses for far-from-everything
    // objects — so the partition stays valid.
    if (v % 16 == 0 && outcome == RunOutcome::kConverged) {
      run.ChargeIterations(16);
      outcome = run.Poll();
    }
    if (outcome != RunOutcome::kConverged) {
      final_labels[v] = next_label++;
      singleton_objects.push_back(v);
      continue;
    }
    double t = 0.0;
    for (std::size_t j = 0; j < clusters.size(); ++j) {
      double mj = 0.0;
      if (use_index) {
        mj = index->M(v, j);
      } else {
        for (std::size_t u : clusters[j]) {
          mj += input.PairwiseDistance(v, u, options.missing);
        }
      }
      m_row[j] = mj;
      t += static_cast<double>(clusters[j].size()) - mj;
    }
    double best_cost = t;  // fresh singleton
    std::size_t best = clusters.size();
    for (std::size_t j = 0; j < clusters.size(); ++j) {
      const double cost =
          t + 2.0 * m_row[j] - static_cast<double>(clusters[j].size());
      if (cost < best_cost) {
        best_cost = cost;
        best = j;
      }
    }
    if (best < clusters.size()) {
      final_labels[v] = static_cast<Clustering::Label>(best);
    } else {
      final_labels[v] = next_label++;
      singleton_objects.push_back(v);
    }
  }
  if (stats != nullptr) stats->assign_phase_seconds = watch.ElapsedSeconds();
  watch.Restart();
  TelemetryEndSpan(telemetry, assign_span);
  const std::size_t recluster_span = TelemetryBeginSpan(
      telemetry, "sampling.recluster");

  // Phase 3: the assignment phase leaves too many singletons (Section
  // 4.1); collect every current singleton — including size-1 sample
  // clusters — and aggregate them again. When even the singleton pool is
  // too large for a quadratic instance, recurse through SAMPLING once
  // (with reclustering off), keeping the whole pipeline sub-quadratic.
  if (opts.recluster_singletons && outcome == RunOutcome::kConverged) {
    for (const std::vector<std::size_t>& members : clusters) {
      if (members.size() == 1) singleton_objects.push_back(members[0]);
    }
    std::sort(singleton_objects.begin(), singleton_objects.end());
    const std::size_t quadratic_cap =
        std::max<std::size_t>(2 * sample_size, 2000);
    if (singleton_objects.size() >= 2 &&
        singleton_objects.size() <= quadratic_cap) {
      Result<ClustererRun> reclustered =
          RunBaseOnSubset(input, base, run, opts, singleton_objects);
      if (!reclustered.ok()) {
        if (RunContext::IsInterrupt(reclustered.status())) {
          // The re-clustering instance build was cut short; skip the
          // polish — the assignment-phase partition stands.
          outcome = MergeOutcomes(outcome, RunContext::OutcomeFromInterrupt(
                                               reclustered.status()));
          return ClustererRun{Clustering(std::move(final_labels)).Normalized(),
                              outcome};
        }
        return reclustered.status();
      }
      outcome = MergeOutcomes(outcome, reclustered->outcome);
      ApplySubClustering(reclustered->clustering, singleton_objects,
                         &final_labels, &next_label);
    } else if (singleton_objects.size() > quadratic_cap) {
      std::vector<Clustering> restricted;
      std::vector<double> restricted_weights;
      restricted.reserve(input.num_clusterings());
      restricted_weights.reserve(input.num_clusterings());
      for (std::size_t i = 0; i < input.num_clusterings(); ++i) {
        restricted.push_back(
            input.clustering(i).Restrict(singleton_objects));
        restricted_weights.push_back(input.weight(i));
      }
      Result<ClusteringSet> sub_input = ClusteringSet::Create(
          std::move(restricted), std::move(restricted_weights));
      if (!sub_input.ok()) return sub_input.status();
      SamplingOptions sub_options = opts;
      sub_options.recluster_singletons = false;
      sub_options.sample_size = sample_size;
      Result<ClustererRun> reclustered =
          SamplingAggregateControlled(*sub_input, base, run, sub_options);
      if (!reclustered.ok()) return reclustered.status();
      outcome = MergeOutcomes(outcome, reclustered->outcome);
      ApplySubClustering(reclustered->clustering, singleton_objects,
                         &final_labels, &next_label);
    }
  }
  if (stats != nullptr) {
    stats->recluster_phase_seconds = watch.ElapsedSeconds();
    stats->singletons_after_assignment = singleton_objects.size();
  }
  TelemetryEndSpan(telemetry, recluster_span);
  TelemetrySetGauge(telemetry, "sampling.singletons_after_assignment",
                    static_cast<std::int64_t>(singleton_objects.size()));

  return ClustererRun{Clustering(std::move(final_labels)).Normalized(),
                      outcome};
}

}  // namespace clustagg
