#include "shard/shard_options.h"

#include <cstdint>

#include "common/check.h"

namespace clustagg {

const char* ShardingModeName(ShardingMode mode) {
  switch (mode) {
    case ShardingMode::kOff:
      return "off";
    case ShardingMode::kAuto:
      return "auto";
    case ShardingMode::kFixed:
      return "fixed";
  }
  CLUSTAGG_CHECK(false);
  return "unknown";
}

Result<ShardOptions> ParseShardsFlag(const std::string& value) {
  ShardOptions options;
  if (value == "off") {
    options.mode = ShardingMode::kOff;
    return options;
  }
  if (value == "auto") {
    options.mode = ShardingMode::kAuto;
    return options;
  }
  if (value.empty() || value.size() > 9) {
    return Status::InvalidArgument("--shards expects auto, off, or a count: " +
                                   value);
  }
  std::uint64_t n = 0;
  for (char c : value) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(
          "--shards expects auto, off, or a count: " + value);
    }
    n = n * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (n == 0) {
    return Status::InvalidArgument("--shards count must be positive");
  }
  options.mode = ShardingMode::kFixed;
  options.num_shards = static_cast<std::size_t>(n);
  return options;
}

}  // namespace clustagg
