#ifndef CLUSTAGG_SHARD_DECOMPOSE_H_
#define CLUSTAGG_SHARD_DECOMPOSE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/run_context.h"
#include "common/status.h"
#include "core/distance_source.h"
#include "shard/shard_options.h"

namespace clustagg {

/// Output of the decompose phase: a partition of the decomposition nodes
/// (objects, or folded signature representatives) into shards, plus the
/// exact accounting of what splitting may cost.
///
/// The decomposition invariant (docs/sharding.md): the disagreement
/// objective separates exactly across connected components of the
/// *agreement graph* — the graph whose edges are the pairs with
/// X_uv < 1/2. Any inter-component pair has X >= 1/2, so separating it
/// costs 1 - X = min(X, 1 - X), the pair's unavoidable lower bound;
/// solving components independently therefore loses nothing. Only edges
/// cut when an oversized component is *split* can cost extra, and that
/// excess is at most (1 - 2 X_uv) per cut agreement edge — the exact
/// total is reported as stitch_error_bound.
struct ShardPlan {
  /// Decomposition-space size (n objects, or s signatures under fold).
  std::size_t num_nodes = 0;

  /// Connected components of the agreement graph.
  std::size_t num_components = 0;
  /// Node -> component, labeled 0..k-1 by first appearance (ascending
  /// node id), so the labeling is deterministic and invariant — as a
  /// partition — under node permutation.
  std::vector<std::int32_t> component_of;

  /// The shards: node ids, ascending within each shard; shards ordered by
  /// their smallest node. Every component lands in exactly one shard
  /// unless it exceeded the size cap and was split; small components may
  /// share a shard (packing cuts no agreement edges — cross-component
  /// pairs have none — so it never adds stitching error).
  std::vector<std::vector<std::size_t>> shards;
  /// Node -> shard index.
  std::vector<std::size_t> shard_of;

  /// Components the size cap forced the BFS partitioner to split.
  std::size_t split_components = 0;
  /// Agreement edges (X_uv < 1/2) running between shards — all of them
  /// created by splits.
  std::size_t cut_edges = 0;
  /// Exact bound on the sharded run's cost excess over any unsharded
  /// solution: sum over cut agreement pairs of w_u * w_v * (1 - 2 X_uv),
  /// where w are the node multiplicities (1 without folding). Zero when
  /// nothing was split. In normalized distance units; multiply by the
  /// input's total clustering weight to compare against
  /// ClusteringSet::TotalDisagreements (the aggregator does exactly that
  /// when surfacing AggregationResult::stitch_error_bound).
  double stitch_error_bound = 0.0;
};

/// Streams the agreement graph from `source` (one FillRow per node — no
/// O(n^2) storage is ever materialized), finds its connected components
/// with UnionFind, splits components above the plan's size cap into
/// balanced parts by BFS region growing, and packs small components
/// toward the cap. `multiplicities` weights the cut accounting (empty =
/// all ones). The scan runs row-parallel over `num_threads` workers with
/// per-thread union-find forests merged after the join, so the result is
/// deterministic across thread counts. Polls `run` throughout; an
/// interrupt abandons the half-scanned graph with the interrupt status
/// (callers degrade to the unsharded pipeline).
Result<ShardPlan> DecomposeAgreementGraph(
    const DistanceSource& source, const std::vector<double>& multiplicities,
    const ShardOptions& options, std::size_t num_threads = 0,
    const RunContext& run = RunContext());

}  // namespace clustagg

#endif  // CLUSTAGG_SHARD_DECOMPOSE_H_
