#include "shard/shard_aggregator.h"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/run_context.h"
#include "core/clustering.h"
#include "core/distance_source.h"
#include "core/instrumentation.h"
#include "core/signature_index.h"
#include "shard/decompose.h"

namespace clustagg {

namespace {

/// The input restricted to one shard's objects (ascending global ids):
/// object i of the result is objects[i], with the input weights kept.
Result<ClusteringSet> RestrictInput(const ClusteringSet& input,
                                    const std::vector<std::size_t>& objects) {
  std::vector<Clustering> restricted;
  restricted.reserve(input.num_clusterings());
  std::vector<double> weights(input.num_clusterings());
  for (std::size_t i = 0; i < input.num_clusterings(); ++i) {
    restricted.push_back(input.clustering(i).Restrict(objects));
    weights[i] = input.weight(i);
  }
  return ClusteringSet::Create(std::move(restricted), std::move(weights));
}

Result<AggregationResult> RunUnsharded(const ClusteringSet& input,
                                       const AggregatorOptions& options) {
  AggregatorOptions plain = options;
  plain.shard.mode = ShardingMode::kOff;
  return Aggregate(input, plain);
}

}  // namespace

Result<AggregationResult> ShardedAggregate(const ClusteringSet& input,
                                           const AggregatorOptions& options) {
  const RunContext& run = options.run;
  Telemetry* telemetry = run.telemetry();
  const std::size_t n = input.num_objects();

  if (!ShardingRequested(options.shard) ||
      options.algorithm == AggregationAlgorithm::kBestClustering ||
      options.sampling_size > 0) {
    return RunUnsharded(input, options);
  }
  // kAuto pre-trigger in object space (folding only shrinks the node
  // count further, so n < min_objects decides without building anything).
  if (options.shard.mode == ShardingMode::kAuto &&
      n < options.shard.min_objects) {
    return RunUnsharded(input, options);
  }

  // Duplicate signatures have pairwise distance 0, so they always share a
  // component: decomposition runs over the s representatives and the
  // agreement scan drops from O(n^2 m) to O(s^2 m).
  std::optional<SignatureIndex> fold_index;
  if (options.fold) {
    InstrumentedSpan fold_span(telemetry, "fold_index");
    fold_index.emplace(SignatureIndex::Build(input));
  }
  const std::size_t nodes = fold_index ? fold_index->num_signatures() : n;
  if (options.shard.mode == ShardingMode::kAuto &&
      nodes < options.shard.min_objects) {
    return RunUnsharded(input, options);
  }

  // The scan always streams from a lazy source — one O(n m) column store
  // whatever backend the per-shard solves use — because both backends
  // answer bit-identically and the scan reads each row exactly once.
  Result<std::shared_ptr<const LazyDistanceSource>> scan =
      fold_index ? LazyDistanceSource::BuildSubset(
                       input, fold_index->representatives(), options.missing)
                 : LazyDistanceSource::Build(input, options.missing);
  if (!scan.ok()) return scan.status();
  static const std::vector<double> kUnitMultiplicities;
  const std::vector<double>& multiplicities =
      fold_index ? fold_index->multiplicities() : kUnitMultiplicities;

  Result<ShardPlan> plan = [&]() -> Result<ShardPlan> {
    InstrumentedSpan decompose_span(telemetry, "shard.decompose");
    return DecomposeAgreementGraph(**scan, multiplicities, options.shard,
                                   options.num_threads, run);
  }();
  if (!plan.ok()) {
    if (RunContext::IsInterrupt(plan.status()) && options.allow_fallbacks) {
      // The half-scanned graph is unusable; the unsharded pipeline picks
      // up whatever budget remains and degrades from there.
      TelemetryCount(telemetry, "shard.fallback.decompose_interrupted");
      Result<AggregationResult> rest = RunUnsharded(input, options);
      if (!rest.ok()) return rest;
      rest->fallbacks.insert(
          rest->fallbacks.begin(),
          "budget fired during the shard agreement scan; running unsharded");
      rest->outcome = MergeOutcomes(rest->outcome, RunOutcome::kFellBack);
      return rest;
    }
    return plan.status();
  }

  TelemetrySetGauge(telemetry, "shard.components",
                    static_cast<std::int64_t>(plan->num_components));
  TelemetrySetGauge(telemetry, "shard.count",
                    static_cast<std::int64_t>(plan->shards.size()));
  TelemetryCount(telemetry, "shard.cut_edges", plan->cut_edges);
  TelemetryCount(telemetry, "shard.split_components", plan->split_components);
  {
    std::vector<std::size_t> component_size(plan->num_components, 0);
    for (std::int32_t c : plan->component_of) {
      ++component_size[static_cast<std::size_t>(c)];
    }
    for (std::size_t size : component_size) {
      TelemetryObserve(telemetry, "shard.component_size", size);
    }
    for (const std::vector<std::size_t>& shard : plan->shards) {
      TelemetryObserve(telemetry, "shard.size", shard.size());
    }
  }

  // Shards in object space: without folding the plan's node lists are
  // already object lists; with folding every object follows its
  // signature's shard (ascending ids either way).
  std::vector<std::vector<std::size_t>> shard_objects;
  if (fold_index) {
    shard_objects.resize(plan->shards.size());
    for (std::size_t v = 0; v < n; ++v) {
      shard_objects[plan->shard_of[fold_index->signature_of(v)]].push_back(v);
    }
  } else {
    shard_objects = std::move(plan->shards);
  }
  const std::size_t shard_count = shard_objects.size();

  AggregationResult out;
  out.sharded = true;
  out.shard_count = shard_count;
  out.shard_components = plan->num_components;
  // The plan's bound is in normalized X units (a cut pair's excess is
  // 1 - 2 X_uv <= 1); total_disagreements counts weighted clustering
  // opinions, where the same pair's excess is scaled by the input's
  // total weight. Surface the bound in the result's units.
  out.stitch_error_bound = plan->stitch_error_bound * input.total_weight();
  if (fold_index) {
    out.fold_signatures = fold_index->num_signatures();
    out.folded = !fold_index->trivial();
  }

  // Solve every shard through the full Aggregate pipeline (per-shard
  // fold, backend fallback, refinement, EXACT tractability all compose
  // per shard). Outer parallelism goes across shards; each shard gets
  // the leftover threads for its own parallel phases.
  const std::size_t resolved = ResolveThreadCount(options.num_threads);
  const std::size_t outer = std::max<std::size_t>(
      1, std::min(shard_count, resolved));
  AggregatorOptions shard_options = options;
  shard_options.shard.mode = ShardingMode::kOff;
  shard_options.num_threads = std::max<std::size_t>(1, resolved / outer);
  // Telemetry spans are single-threaded by contract (Span begin/end must
  // come from one thread at a time), so parallel per-shard solves run
  // with the sink detached; the per-shard latency histogram below is
  // recorded from this thread after the join either way.
  shard_options.run =
      outer > 1 ? run.WithTelemetry(nullptr) : run;

  std::vector<std::optional<AggregationResult>> solved(shard_count);
  std::vector<std::optional<Status>> errors(shard_count);
  std::vector<std::uint64_t> solve_nanos(shard_count, 0);
  {
    InstrumentedSpan solve_span(telemetry, "shard.solve");
    ParallelForRowsCancellable(
        shard_count, outer, run, [&](std::size_t s, std::size_t) {
          const std::uint64_t start =
              telemetry != nullptr ? telemetry->clock().NowNanos() : 0;
          std::optional<InstrumentedSpan> shard_span;
          std::string span_name;
          if (outer == 1 && telemetry != nullptr) {
            span_name = "shard." + std::to_string(s);
            shard_span.emplace(telemetry, span_name);
          }
          Result<ClusteringSet> restricted =
              RestrictInput(input, shard_objects[s]);
          if (!restricted.ok()) {
            errors[s] = restricted.status();
            return;
          }
          Result<AggregationResult> result =
              Aggregate(*restricted, shard_options);
          if (!result.ok()) {
            errors[s] = result.status();
            return;
          }
          solved[s] = std::move(*result);
          if (telemetry != nullptr) {
            solve_nanos[s] = telemetry->clock().NowNanos() - start;
          }
        });
  }
  for (std::size_t s = 0; s < shard_count; ++s) {
    if (errors[s].has_value()) return *errors[s];
  }
  for (std::size_t s = 0; s < shard_count; ++s) {
    if (solve_nanos[s] != 0) {
      TelemetryObserve(telemetry, "shard.solve_nanos", solve_nanos[s]);
    }
  }

  // Shards the interrupted loop never started degrade to singletons —
  // the same honest best-so-far the unsharded build-interrupt path uses.
  bool any_unsolved = false;
  for (std::size_t s = 0; s < shard_count; ++s) {
    if (solved[s].has_value()) {
      out.outcome = MergeOutcomes(out.outcome, solved[s]->outcome);
      for (const std::string& note : solved[s]->fallbacks) {
        out.fallbacks.push_back("shard " + std::to_string(s) + "/" +
                                std::to_string(shard_count) + ": " + note);
      }
      continue;
    }
    any_unsolved = true;
    AggregationResult filler;
    filler.clustering = Clustering::AllSingletons(shard_objects[s].size());
    RunOutcome interrupt = run.Poll();
    filler.outcome = interrupt == RunOutcome::kConverged
                         ? RunOutcome::kDeadlineExceeded
                         : interrupt;
    out.outcome = MergeOutcomes(out.outcome, filler.outcome);
    solved[s] = std::move(filler);
  }
  if (any_unsolved) {
    out.fallbacks.push_back(
        "budget fired before every shard was solved; unsolved shards "
        "return the all-singletons partition");
    TelemetryCount(telemetry, "shard.fallback.solve_interrupted");
  }

  InstrumentedSpan stitch_span(telemetry, "shard.stitch");
  if (shard_count == 1 && !any_unsolved) {
    // Single shard over the identity subset: the shard's pipeline was
    // the unsharded pipeline, label for label and score for score.
    out.clustering = std::move(solved[0]->clustering);
    out.total_disagreements = solved[0]->total_disagreements;
    return out;
  }
  std::vector<Clustering::Label> labels(n, Clustering::kMissing);
  Clustering::Label offset = 0;
  for (std::size_t s = 0; s < shard_count; ++s) {
    const Clustering& local = solved[s]->clustering;
    Clustering::Label local_max = -1;
    for (std::size_t i = 0; i < shard_objects[s].size(); ++i) {
      const Clustering::Label label = local.label(i);
      labels[shard_objects[s][i]] =
          static_cast<Clustering::Label>(offset + label);
      local_max = std::max(local_max, label);
    }
    offset += local_max + 1;
  }
  Clustering stitched{std::move(labels)};
  stitched.Normalize();
  out.clustering = std::move(stitched);

  InstrumentedSpan score_span(telemetry, "score");
  Result<double> disagreements =
      input.TotalDisagreements(out.clustering, options.missing);
  if (!disagreements.ok()) return disagreements.status();
  out.total_disagreements = *disagreements;
  TelemetrySetGauge(telemetry, "aggregate.clusters",
                    static_cast<std::int64_t>(out.clustering.NumClusters()));
  return out;
}

}  // namespace clustagg
