#ifndef CLUSTAGG_SHARD_SHARD_AGGREGATOR_H_
#define CLUSTAGG_SHARD_SHARD_AGGREGATOR_H_

#include "common/status.h"
#include "core/aggregator.h"
#include "core/clustering_set.h"

namespace clustagg {

/// The shard-and-conquer pipeline behind Aggregate's `--shards` routing
/// (docs/sharding.md):
///
///   1. decompose — stream the agreement graph (pairs with X_uv < 1/2)
///      from a lazy scan, find its connected components, split oversized
///      ones with the BFS partitioner, pack small ones
///      (shard/decompose.h). With folding on, the scan runs over the s
///      signature representatives: duplicates have distance 0, so they
///      always share a component and the scan drops from O(n^2 m) to
///      O(s^2 m).
///   2. solve — run the full Aggregate pipeline per shard (same
///      algorithm, backend, fold, refinement; sharding and sampling off)
///      on the shard's restriction of the input, in parallel across
///      shards. Shards share the parent RunContext's deadline /
///      iteration pool / cancel flag and poll it independently, so a
///      fired budget degrades shard-by-shard: finished shards keep their
///      results, interrupted ones return their best-so-far, never-started
///      ones fall back to singletons.
///   3. stitch — remap shard-local labels into one global clustering and
///      score it. The result carries `sharded`, `shard_count`,
///      `shard_components`, and the exact `stitch_error_bound`
///      (shard/decompose.h); a plan with a single shard returns the
///      shard's result verbatim, bit-identical to the unsharded pipeline.
///
/// Falls through to the unsharded pipeline when sharding is off, the
/// kAuto trigger does not fire, sampling is active (sampling already
/// avoids the O(n^2) instance), the algorithm is kBestClustering, or the
/// decompose scan is interrupted (with a recorded fallback).
Result<AggregationResult> ShardedAggregate(const ClusteringSet& input,
                                           const AggregatorOptions& options);

}  // namespace clustagg

#endif  // CLUSTAGG_SHARD_SHARD_AGGREGATOR_H_
