#include "shard/decompose.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "common/union_find.h"

namespace clustagg {

namespace {

/// Per-shard size cap in decomposition nodes for this plan.
std::size_t PlanCapacity(std::size_t num_nodes, const ShardOptions& options) {
  if (options.mode == ShardingMode::kFixed) {
    const std::size_t shards = std::max<std::size_t>(1, options.num_shards);
    return std::max<std::size_t>(1, (num_nodes + shards - 1) / shards);
  }
  return std::max<std::size_t>(1, options.max_shard_size);
}

/// Splits one oversized component into balanced parts: nodes are visited
/// in BFS order over the component's agreement edges (starting from its
/// smallest node, neighbors in ascending id, so the order is
/// deterministic) and the order is chopped into consecutive chunks of
/// ceil(|C| / p) nodes. BFS locality keeps most agreement edges inside a
/// chunk, which is what the cut bound pays for. Returns the part lists.
Result<std::vector<std::vector<std::size_t>>> SplitComponent(
    const DistanceSource& source, const std::vector<std::size_t>& members,
    std::size_t capacity, std::vector<char>& agree_buf,
    const RunContext& run) {
  const std::size_t size = members.size();
  const std::size_t parts = (size + capacity - 1) / capacity;
  const std::size_t part_cap = (size + parts - 1) / parts;

  std::vector<std::size_t> order;
  order.reserve(size);
  std::vector<char> visited(size, 0);
  for (std::size_t seed = 0; seed < size; ++seed) {
    // The component is connected, so the first seed reaches everything;
    // the outer loop is defensive.
    if (visited[seed]) continue;
    visited[seed] = 1;
    order.push_back(members[seed]);
    for (std::size_t head = order.size() - 1; head < order.size(); ++head) {
      if (head % 16 == 15 && run.ShouldStop()) {
        return run.StopStatus(run.Poll());
      }
      source.AgreementRow(order[head], agree_buf);
      for (std::size_t i = 0; i < size; ++i) {
        const std::size_t v = members[i];
        if (!visited[i] && agree_buf[v]) {
          visited[i] = 1;
          order.push_back(v);
        }
      }
    }
  }
  CLUSTAGG_CHECK(order.size() == size);

  std::vector<std::vector<std::size_t>> out;
  out.reserve(parts);
  for (std::size_t begin = 0; begin < size; begin += part_cap) {
    const std::size_t end = std::min(size, begin + part_cap);
    std::vector<std::size_t> part(order.begin() +
                                      static_cast<std::ptrdiff_t>(begin),
                                  order.begin() +
                                      static_cast<std::ptrdiff_t>(end));
    std::sort(part.begin(), part.end());
    out.push_back(std::move(part));
  }
  return out;
}

}  // namespace

Result<ShardPlan> DecomposeAgreementGraph(
    const DistanceSource& source, const std::vector<double>& multiplicities,
    const ShardOptions& options, std::size_t num_threads,
    const RunContext& run) {
  const std::size_t n = source.size();
  CLUSTAGG_CHECK(multiplicities.empty() || multiplicities.size() == n);
  ShardPlan plan;
  plan.num_nodes = n;
  if (n == 0) return plan;

  // Phase 1: stream the agreement graph and union endpoints. Each worker
  // owns a private forest; merging them afterwards reproduces the same
  // components whatever the schedule, so the plan is thread-count
  // independent. The scan asks only X_uv < 1/2, so it goes through
  // AgreementRow: under the packed label kernel each row is answered
  // with an integer mismatch-count threshold per pair, never
  // materializing distances.
  const std::size_t threads =
      EffectiveRowThreads(n, ResolveThreadCount(num_threads));
  std::vector<UnionFind> forests(threads, UnionFind(n));
  std::vector<std::vector<char>> rows(threads, std::vector<char>(n));
  const bool scanned = ParallelForRowsCancellable(
      n, threads, run, [&](std::size_t u, std::size_t tid) {
        std::vector<char>& agree = rows[tid];
        source.AgreementRow(u, agree);
        UnionFind& forest = forests[tid];
        for (std::size_t v = u + 1; v < n; ++v) {
          if (agree[v]) forest.Union(u, v);
        }
      });
  if (!scanned) {
    const RunOutcome outcome = run.Poll();
    return outcome == RunOutcome::kConverged
               ? Status::DeadlineExceeded("agreement scan interrupted")
               : run.StopStatus(outcome);
  }
  UnionFind components(n);
  for (UnionFind& forest : forests) {
    for (std::size_t v = 0; v < n; ++v) components.Union(v, forest.Find(v));
  }
  plan.component_of = components.ComponentLabels();
  std::int32_t max_label = -1;
  for (std::int32_t label : plan.component_of) {
    max_label = std::max(max_label, label);
  }
  plan.num_components = static_cast<std::size_t>(max_label + 1);

  std::vector<std::vector<std::size_t>> members(plan.num_components);
  for (std::size_t v = 0; v < n; ++v) {
    members[static_cast<std::size_t>(plan.component_of[v])].push_back(v);
  }

  // Phase 2: split components above the cap and charge the cut edges.
  // The BFS split only needs agreement bits; the cut accounting below
  // still reads exact X values through FillRow.
  const std::size_t capacity = PlanCapacity(n, options);
  std::vector<std::vector<std::size_t>> units;
  std::vector<char>& agree_buf = rows[0];
  std::vector<double> row_buf(n);
  std::vector<std::size_t> part_of(n, 0);
  for (std::vector<std::size_t>& component : members) {
    if (component.size() <= capacity) {
      units.push_back(std::move(component));
      continue;
    }
    Result<std::vector<std::vector<std::size_t>>> parts = SplitComponent(
        source, component, capacity, agree_buf, run);
    if (!parts.ok()) return parts.status();
    ++plan.split_components;
    for (std::size_t p = 0; p < parts->size(); ++p) {
      for (std::size_t v : (*parts)[p]) part_of[v] = p;
    }
    // Exact cut accounting: every within-component agreement pair now
    // separated by the split pays (1 - X) instead of its unavoidable
    // min(X, 1 - X) = X, an excess of exactly (1 - 2 X) per original
    // pair — w_u * w_v of them under folding.
    for (std::size_t i = 0; i < component.size(); ++i) {
      if (i % 16 == 15 && run.ShouldStop()) {
        return run.StopStatus(run.Poll());
      }
      const std::size_t u = component[i];
      source.FillRow(u, row_buf);
      const double wu =
          multiplicities.empty() ? 1.0 : multiplicities[u];
      for (std::size_t j = i + 1; j < component.size(); ++j) {
        const std::size_t v = component[j];
        if (part_of[u] == part_of[v]) continue;
        const double x = row_buf[v];
        if (x >= 0.5) continue;
        const double wv =
            multiplicities.empty() ? 1.0 : multiplicities[v];
        ++plan.cut_edges;
        plan.stitch_error_bound += wu * wv * (1.0 - 2.0 * x);
      }
    }
    for (std::vector<std::size_t>& part : *parts) {
      units.push_back(std::move(part));
    }
  }

  // Phase 3: pack units toward the cap with first-fit decreasing so a sea
  // of tiny components does not become a sea of tiny shards. Packing only
  // co-locates nodes, never separates them, so it cuts nothing.
  std::vector<std::size_t> by_size(units.size());
  std::iota(by_size.begin(), by_size.end(), std::size_t{0});
  std::sort(by_size.begin(), by_size.end(), [&](std::size_t a, std::size_t b) {
    if (units[a].size() != units[b].size()) {
      return units[a].size() > units[b].size();
    }
    return units[a].front() < units[b].front();
  });
  std::vector<std::vector<std::size_t>> bins;
  std::vector<std::size_t> bin_sizes;
  for (std::size_t idx : by_size) {
    std::vector<std::size_t>& unit = units[idx];
    std::size_t target = bins.size();
    for (std::size_t b = 0; b < bins.size(); ++b) {
      if (bin_sizes[b] + unit.size() <= capacity) {
        target = b;
        break;
      }
    }
    if (target == bins.size()) {
      bins.emplace_back();
      bin_sizes.push_back(0);
    }
    bin_sizes[target] += unit.size();
    bins[target].insert(bins[target].end(), unit.begin(), unit.end());
  }
  for (std::vector<std::size_t>& bin : bins) {
    std::sort(bin.begin(), bin.end());
  }
  std::sort(bins.begin(), bins.end(),
            [](const std::vector<std::size_t>& a,
               const std::vector<std::size_t>& b) {
              return a.front() < b.front();
            });
  plan.shard_of.assign(n, 0);
  for (std::size_t s = 0; s < bins.size(); ++s) {
    for (std::size_t v : bins[s]) plan.shard_of[v] = s;
  }
  plan.shards = std::move(bins);
  return plan;
}

}  // namespace clustagg
