#ifndef CLUSTAGG_SHARD_SHARD_OPTIONS_H_
#define CLUSTAGG_SHARD_SHARD_OPTIONS_H_

#include <cstddef>
#include <string>

#include "common/status.h"

namespace clustagg {

/// How the shard-and-conquer pipeline is engaged (docs/sharding.md).
enum class ShardingMode {
  /// Never shard; the Aggregate facade runs its classic single-instance
  /// pipeline.
  kOff,
  /// Decompose when the instance is large enough to benefit
  /// (ShardOptions::min_objects) and cap shards at
  /// ShardOptions::max_shard_size. Small instances skip the O(n^2)
  /// agreement scan entirely.
  kAuto,
  /// Always decompose, targeting ShardOptions::num_shards shards (the
  /// per-shard size cap becomes ceil(n / num_shards)).
  kFixed,
};

/// Stable lowercase name ("off" / "auto" / "fixed") for reports.
const char* ShardingModeName(ShardingMode mode);

/// Knobs for the sharding pipeline (src/shard/). Kept free of core
/// dependencies so AggregatorOptions can embed it.
struct ShardOptions {
  ShardingMode mode = ShardingMode::kOff;

  /// Target shard count for kFixed (>= 1). With 1 the pipeline still
  /// runs — decompose, solve the single shard, stitch — which pins the
  /// single-shard ≡ unsharded equivalence the test suite relies on.
  std::size_t num_shards = 1;

  /// kAuto size cap: connected components larger than this (measured in
  /// decomposition nodes — signatures when folding is active) are split
  /// by the BFS partitioner, and smaller components are packed toward it.
  std::size_t max_shard_size = 4096;

  /// kAuto trigger: below this many decomposition nodes the agreement
  /// scan is not worth its O(n^2 m) cost and the run stays unsharded.
  std::size_t min_objects = 2048;
};

/// True when the pipeline should route through src/shard/.
inline bool ShardingRequested(const ShardOptions& options) {
  return options.mode != ShardingMode::kOff;
}

/// Parses the CLI surface: "off", "auto", or a positive shard count N
/// (mode kFixed). Everything else is InvalidArgument.
Result<ShardOptions> ParseShardsFlag(const std::string& value);

}  // namespace clustagg

#endif  // CLUSTAGG_SHARD_SHARD_OPTIONS_H_
