#include "categorical/limbo.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace clustagg {

namespace {

/// Sparse distribution over attribute-value items, sorted by item id.
using Sparse = std::vector<std::pair<std::uint32_t, double>>;

/// A weighted cluster summary (LIMBO's DCF): total tuple mass and the
/// conditional distribution over attribute-value items.
struct Summary {
  double weight = 0.0;
  Sparse dist;
};

/// Information loss of merging two summaries:
///   delta_I = (w1 + w2) * [pi1 KL(p1 || pbar) + pi2 KL(p2 || pbar)],
/// the weighted Jensen-Shannon divergence, computed in one merged sweep
/// over the two supports.
double MergeCost(const Summary& a, const Summary& b) {
  const double w = a.weight + b.weight;
  const double pi1 = a.weight / w;
  const double pi2 = b.weight / w;
  double js = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.dist.size() || j < b.dist.size()) {
    double p1 = 0.0;
    double p2 = 0.0;
    if (j >= b.dist.size() ||
        (i < a.dist.size() && a.dist[i].first < b.dist[j].first)) {
      p1 = a.dist[i++].second;
    } else if (i >= a.dist.size() || b.dist[j].first < a.dist[i].first) {
      p2 = b.dist[j++].second;
    } else {
      p1 = a.dist[i++].second;
      p2 = b.dist[j++].second;
    }
    const double pbar = pi1 * p1 + pi2 * p2;
    if (p1 > 0.0) js += pi1 * p1 * std::log2(p1 / pbar);
    if (p2 > 0.0) js += pi2 * p2 * std::log2(p2 / pbar);
  }
  return w * std::max(js, 0.0);
}

/// Merges b into a (weighted mixture of the distributions).
void MergeInto(Summary* a, const Summary& b) {
  const double w = a->weight + b.weight;
  const double pi1 = a->weight / w;
  const double pi2 = b.weight / w;
  Sparse merged;
  merged.reserve(a->dist.size() + b.dist.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a->dist.size() || j < b.dist.size()) {
    if (j >= b.dist.size() ||
        (i < a->dist.size() && a->dist[i].first < b.dist[j].first)) {
      merged.emplace_back(a->dist[i].first, pi1 * a->dist[i].second);
      ++i;
    } else if (i >= a->dist.size() || b.dist[j].first < a->dist[i].first) {
      merged.emplace_back(b.dist[j].first, pi2 * b.dist[j].second);
      ++j;
    } else {
      merged.emplace_back(a->dist[i].first,
                          pi1 * a->dist[i].second + pi2 * b.dist[j].second);
      ++i;
      ++j;
    }
  }
  a->weight = w;
  a->dist = std::move(merged);
}

/// The tuple's singleton summary: uniform over its present
/// attribute-value items, mass 1/n.
Summary TupleSummary(const CategoricalTable& table,
                     const std::vector<std::uint32_t>& item_offsets,
                     std::size_t row, double mass) {
  Summary s;
  s.weight = mass;
  std::size_t present = 0;
  for (std::size_t a = 0; a < table.num_attributes(); ++a) {
    if (table.has_value(row, a)) ++present;
  }
  if (present == 0) return s;
  const double p = 1.0 / static_cast<double>(present);
  s.dist.reserve(present);
  for (std::size_t a = 0; a < table.num_attributes(); ++a) {
    if (!table.has_value(row, a)) continue;
    s.dist.emplace_back(
        item_offsets[a] + static_cast<std::uint32_t>(table.value(row, a)),
        p);
  }
  return s;
}

}  // namespace

Result<Clustering> LimboCluster(const CategoricalTable& table,
                                const LimboOptions& options) {
  if (options.k < 1) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (options.phi < 0.0) {
    return Status::InvalidArgument("phi must be >= 0");
  }
  if (options.max_summaries < options.k) {
    return Status::InvalidArgument("max_summaries must be >= k");
  }
  const std::size_t n = table.num_rows();
  const std::size_t m = table.num_attributes();
  const double mass = 1.0 / static_cast<double>(n);

  std::vector<std::uint32_t> item_offsets(m, 0);
  for (std::size_t a = 1; a < m; ++a) {
    item_offsets[a] = item_offsets[a - 1] +
                      static_cast<std::uint32_t>(
                          table.attribute_cardinality(a - 1));
  }

  Rng rng(options.seed);

  // Merge-cost scale for the phi threshold: average cost of merging two
  // random tuples.
  double scale = 0.0;
  if (options.phi > 0.0 && n >= 2) {
    const std::size_t trials = std::min<std::size_t>(200, n * (n - 1) / 2);
    for (std::size_t t = 0; t < trials; ++t) {
      const std::size_t u = rng.NextBounded(n);
      std::size_t v = rng.NextBounded(n);
      if (v == u) v = (v + 1) % n;
      scale += MergeCost(TupleSummary(table, item_offsets, u, mass),
                         TupleSummary(table, item_offsets, v, mass));
    }
    scale /= static_cast<double>(trials);
  }
  const double threshold = options.phi * scale;

  // Phase 1: space-bounded summarization. Tuples are folded into the
  // closest summary unless they are informative enough (cost above the
  // phi threshold) and space remains for a new summary.
  std::vector<Summary> summaries;
  summaries.reserve(std::min(options.max_summaries, n));
  for (std::size_t row = 0; row < n; ++row) {
    Summary ts = TupleSummary(table, item_offsets, row, mass);
    double best_cost = std::numeric_limits<double>::infinity();
    std::size_t best = summaries.size();
    for (std::size_t s = 0; s < summaries.size(); ++s) {
      const double c = MergeCost(summaries[s], ts);
      if (c < best_cost) {
        best_cost = c;
        best = s;
      }
    }
    const bool open_new = summaries.size() < options.max_summaries &&
                          (summaries.empty() || best_cost > threshold);
    if (open_new) {
      summaries.push_back(std::move(ts));
    } else {
      MergeInto(&summaries[best], ts);
    }
  }

  // Phase 2: agglomerative information bottleneck on the summaries, via
  // a lazy min-heap of merge costs.
  const std::size_t s0 = summaries.size();
  std::vector<std::uint32_t> version(s0, 0);
  std::vector<bool> alive(s0, true);
  std::size_t active = s0;

  struct HeapEntry {
    double cost;
    std::uint32_t a, b;
    std::uint32_t version_a, version_b;
    bool operator<(const HeapEntry& other) const {
      return cost > other.cost;  // min-heap
    }
  };
  std::priority_queue<HeapEntry> heap;
  auto push_costs_of = [&](std::size_t a) {
    for (std::size_t b = 0; b < s0; ++b) {
      if (b == a || !alive[b]) continue;
      heap.push({MergeCost(summaries[a], summaries[b]),
                 static_cast<std::uint32_t>(std::min(a, b)),
                 static_cast<std::uint32_t>(std::max(a, b)),
                 version[std::min(a, b)], version[std::max(a, b)]});
    }
  };
  for (std::size_t a = 0; a < s0; ++a) {
    for (std::size_t b = a + 1; b < s0; ++b) {
      heap.push({MergeCost(summaries[a], summaries[b]),
                 static_cast<std::uint32_t>(a), static_cast<std::uint32_t>(b),
                 version[a], version[b]});
    }
  }
  while (active > options.k && !heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    const std::size_t a = top.a;
    const std::size_t b = top.b;
    if (!alive[a] || !alive[b] || version[a] != top.version_a ||
        version[b] != top.version_b) {
      continue;
    }
    MergeInto(&summaries[a], summaries[b]);
    alive[b] = false;
    ++version[a];
    ++version[b];
    --active;
    if (active > options.k) push_costs_of(a);
  }

  // Phase 3: assign every tuple to the surviving cluster with the least
  // information loss.
  std::vector<std::size_t> cluster_reps;
  for (std::size_t s = 0; s < s0; ++s) {
    if (alive[s]) cluster_reps.push_back(s);
  }
  std::vector<Clustering::Label> labels(n);
  for (std::size_t row = 0; row < n; ++row) {
    const Summary ts = TupleSummary(table, item_offsets, row, mass);
    double best_cost = std::numeric_limits<double>::infinity();
    std::size_t best = 0;
    for (std::size_t c = 0; c < cluster_reps.size(); ++c) {
      const double cost = MergeCost(summaries[cluster_reps[c]], ts);
      if (cost < best_cost) {
        best_cost = cost;
        best = c;
      }
    }
    labels[row] = static_cast<Clustering::Label>(best);
  }
  return Clustering(std::move(labels)).Normalized();
}

}  // namespace clustagg
