#ifndef CLUSTAGG_CATEGORICAL_LIMBO_H_
#define CLUSTAGG_CATEGORICAL_LIMBO_H_

#include <cstddef>
#include <cstdint>

#include "categorical/table.h"
#include "common/status.h"
#include "core/clustering.h"

namespace clustagg {

/// Options for the LIMBO baseline.
struct LimboOptions {
  /// Target number of clusters.
  std::size_t k = 2;

  /// Summarization aggressiveness, following the spirit of the original
  /// phi parameter: during the space-bounded summarization pass, a tuple
  /// opens a new summary only if merging it into the closest existing
  /// summary would lose more than `phi * scale` information, where
  /// `scale` is the average merge cost of random tuple pairs (estimated
  /// from a sample). phi = 0 with few tuples degenerates to exact
  /// agglomerative information bottleneck.
  double phi = 0.0;

  /// Hard cap on the number of summaries produced by phase 1 (the
  /// space bound of LIMBO's DCF tree). The O(s^2 log s) phase-2 merging
  /// runs on at most this many summaries.
  std::size_t max_summaries = 2000;

  /// Seed for the scale-estimation sample and the summarization order.
  std::uint64_t seed = 1;
};

/// The LIMBO categorical clustering algorithm (Andritsos, Tsaparas,
/// Miller, Sevcik; EDBT 2004), reimplemented as the paper's second
/// comparison baseline for Tables 2 and 3. Tuples are distributions over
/// attribute-value pairs; merging two clusters costs the information loss
///   delta_I(c1, c2) = (w1 + w2) * JS_pi(p1, p2)
/// (weighted Jensen-Shannon divergence). Three phases, faithful to the
/// original at benchmark scale:
///  1. space-bounded summarization of the tuples into at most
///     max_summaries weighted summaries (phi controls eagerness),
///  2. agglomerative information bottleneck on the summaries down to k
///     clusters,
///  3. assignment of every original tuple to the cluster representative
///     with the smallest information loss.
Result<Clustering> LimboCluster(const CategoricalTable& table,
                                const LimboOptions& options);

}  // namespace clustagg

#endif  // CLUSTAGG_CATEGORICAL_LIMBO_H_
