#ifndef CLUSTAGG_CATEGORICAL_ROCK_H_
#define CLUSTAGG_CATEGORICAL_ROCK_H_

#include <cstddef>
#include <cstdint>

#include "categorical/table.h"
#include "common/status.h"
#include "core/clustering.h"

namespace clustagg {

/// Options for the ROCK baseline.
struct RockOptions {
  /// Jaccard similarity threshold: rows with similarity >= theta are
  /// neighbors. The paper's comparisons use theta = 0.73 (Votes) and
  /// theta = 0.8 (Mushrooms), values suggested by Guha et al.
  double theta = 0.5;

  /// Target number of clusters.
  std::size_t k = 2;

  /// ROCK is O(n^2) in similarities and worse in link counting; like the
  /// original paper, large inputs are clustered on a uniform sample and
  /// the remaining rows are assigned to the cluster with the most
  /// favorable link-based goodness. 0 disables sampling.
  std::size_t sample_size = 0;

  std::uint64_t seed = 1;
};

/// The ROCK categorical clustering algorithm (Guha, Rastogi, Shim, 2000),
/// reimplemented as the paper's first comparison baseline for Tables 2
/// and 3. Rows are "linked" through common neighbors under the Jaccard
/// threshold theta; clusters are merged greedily by the goodness measure
///   g(Ci, Cj) = links(Ci, Cj) /
///               ((ni+nj)^(1+2f) - ni^(1+2f) - nj^(1+2f)),
/// with f = (1 - theta) / (1 + theta), until k clusters remain or no
/// linked pair is left.
Result<Clustering> RockCluster(const CategoricalTable& table,
                               const RockOptions& options);

}  // namespace clustagg

#endif  // CLUSTAGG_CATEGORICAL_ROCK_H_
