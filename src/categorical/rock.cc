#include "categorical/rock.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace clustagg {

namespace {

/// Greedy goodness-based merging on an explicit subset of rows. Returns
/// labels (one per subset row) with at most k clusters among the rows
/// that have links; link-less rows stay singletons.
struct RockCore {
  const CategoricalTable& table;
  const std::vector<std::size_t>& rows;
  double theta;
  double f;  // (1 - theta) / (1 + theta)

  // Per active cluster: member rows (subset indices), link counts to
  // other clusters, and a version stamp for lazy heap invalidation.
  std::vector<std::vector<std::uint32_t>> members;
  std::vector<std::unordered_map<std::uint32_t, double>> links;
  std::vector<std::uint32_t> version;
  std::size_t active = 0;

  std::vector<std::vector<std::uint32_t>> neighbors;

  explicit RockCore(const CategoricalTable& t,
                    const std::vector<std::size_t>& r, double th)
      : table(t), rows(r), theta(th), f((1.0 - th) / (1.0 + th)) {}

  void BuildNeighbors() {
    const std::size_t ns = rows.size();
    neighbors.assign(ns, {});
    for (std::size_t i = 0; i < ns; ++i) {
      for (std::size_t j = i + 1; j < ns; ++j) {
        if (JaccardSimilarity(table, rows[i], rows[j]) >= theta) {
          neighbors[i].push_back(static_cast<std::uint32_t>(j));
          neighbors[j].push_back(static_cast<std::uint32_t>(i));
        }
      }
    }
  }

  Status BuildLinks() {
    const std::size_t ns = rows.size();
    // Cost guard: link counting enumerates all neighbor pairs.
    std::size_t work = 0;
    for (const auto& nb : neighbors) work += nb.size() * nb.size();
    if (work > std::size_t{4} * 1000 * 1000 * 1000) {
      return Status::ResourceExhausted(
          "ROCK link counting would enumerate " + std::to_string(work) +
          " neighbor pairs; use RockOptions::sample_size");
    }

    members.assign(ns, {});
    links.assign(ns, {});
    version.assign(ns, 0);
    active = ns;
    for (std::size_t i = 0; i < ns; ++i) {
      members[i] = {static_cast<std::uint32_t>(i)};
    }
    // links(u, v) = number of common neighbors of u and v: every row i
    // contributes one link to each pair of its neighbors.
    for (std::size_t i = 0; i < ns; ++i) {
      const auto& nb = neighbors[i];
      for (std::size_t a = 0; a < nb.size(); ++a) {
        for (std::size_t b = a + 1; b < nb.size(); ++b) {
          links[nb[a]][nb[b]] += 1.0;
          links[nb[b]][nb[a]] += 1.0;
        }
      }
    }
    return Status::OK();
  }

  double Goodness(std::size_t a, std::size_t b, double link_count) const {
    const double na = static_cast<double>(members[a].size());
    const double nb = static_cast<double>(members[b].size());
    const double e = 1.0 + 2.0 * f;
    const double denom = std::pow(na + nb, e) - std::pow(na, e) -
                         std::pow(nb, e);
    return link_count / denom;
  }

  /// Merges clusters until k remain or no linked pair is left.
  void MergeTo(std::size_t k) {
    struct HeapEntry {
      double goodness;
      std::uint32_t a, b;
      std::uint32_t version_a, version_b;
      bool operator<(const HeapEntry& other) const {
        return goodness < other.goodness;
      }
    };
    std::priority_queue<HeapEntry> heap;
    auto push_pairs_of = [&](std::size_t a) {
      for (const auto& [b, l] : links[a]) {
        if (members[b].empty()) continue;
        heap.push({Goodness(a, b, l), static_cast<std::uint32_t>(a), b,
                   version[a], version[b]});
      }
    };
    for (std::size_t i = 0; i < links.size(); ++i) {
      for (const auto& [j, l] : links[i]) {
        if (i < j) {
          heap.push({Goodness(i, j, l), static_cast<std::uint32_t>(i), j,
                     version[i], version[j]});
        }
      }
    }

    while (active > k && !heap.empty()) {
      const HeapEntry top = heap.top();
      heap.pop();
      const std::size_t a = top.a;
      const std::size_t b = top.b;
      if (version[a] != top.version_a || version[b] != top.version_b) {
        continue;  // stale
      }
      CLUSTAGG_CHECK(!members[a].empty() && !members[b].empty());
      // Merge b into a.
      members[a].insert(members[a].end(), members[b].begin(),
                        members[b].end());
      members[b].clear();
      ++version[a];
      ++version[b];
      links[a].erase(static_cast<std::uint32_t>(b));
      for (const auto& [c, l] : links[b]) {
        if (c == a || members[c].empty()) continue;
        links[a][c] += l;
        links[c][static_cast<std::uint32_t>(a)] += l;
        links[c].erase(static_cast<std::uint32_t>(b));
      }
      links[b].clear();
      --active;
      push_pairs_of(a);
    }
  }

  /// Labels for the subset rows, normalized.
  Clustering ToClustering() const {
    std::vector<Clustering::Label> labels(rows.size(), Clustering::kMissing);
    Clustering::Label next = 0;
    for (const auto& cluster : members) {
      if (cluster.empty()) continue;
      for (std::uint32_t i : cluster) labels[i] = next;
      ++next;
    }
    return Clustering(std::move(labels));
  }
};

}  // namespace

Result<Clustering> RockCluster(const CategoricalTable& table,
                               const RockOptions& options) {
  if (options.theta < 0.0 || options.theta > 1.0) {
    return Status::InvalidArgument("theta must lie in [0, 1]");
  }
  if (options.k < 1) {
    return Status::InvalidArgument("k must be >= 1");
  }
  const std::size_t n = table.num_rows();

  std::vector<std::size_t> cluster_rows(n);
  for (std::size_t i = 0; i < n; ++i) cluster_rows[i] = i;
  const bool sampled = options.sample_size > 0 && options.sample_size < n;
  if (sampled) {
    Rng rng(options.seed);
    cluster_rows = rng.SampleWithoutReplacement(n, options.sample_size);
    std::sort(cluster_rows.begin(), cluster_rows.end());
  }

  RockCore core(table, cluster_rows, options.theta);
  core.BuildNeighbors();
  if (Status s = core.BuildLinks(); !s.ok()) return s;
  core.MergeTo(options.k);
  const Clustering sample_clustering = core.ToClustering();

  if (!sampled) return sample_clustering.Normalized();

  // Labeling phase (as in the original ROCK paper): each remaining row
  // goes to the cluster with the most threshold-neighbors, normalized by
  // the cluster's expected neighbor count (|C| + 1)^f.
  const auto clusters = sample_clustering.Clusters();
  std::vector<Clustering::Label> labels(n, Clustering::kMissing);
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    for (std::size_t i : clusters[c]) {
      labels[cluster_rows[i]] = static_cast<Clustering::Label>(c);
    }
  }
  Clustering::Label next = static_cast<Clustering::Label>(clusters.size());
  const double f = (1.0 - options.theta) / (1.0 + options.theta);
  for (std::size_t r = 0; r < n; ++r) {
    if (labels[r] != Clustering::kMissing) continue;
    double best_score = 0.0;
    Clustering::Label best = Clustering::kMissing;
    for (std::size_t c = 0; c < clusters.size(); ++c) {
      std::size_t in_neighbors = 0;
      for (std::size_t i : clusters[c]) {
        if (JaccardSimilarity(table, r, cluster_rows[i]) >= options.theta) {
          ++in_neighbors;
        }
      }
      const double score =
          static_cast<double>(in_neighbors) /
          std::pow(static_cast<double>(clusters[c].size()) + 1.0, f);
      if (score > best_score) {
        best_score = score;
        best = static_cast<Clustering::Label>(c);
      }
    }
    labels[r] = best != Clustering::kMissing ? best : next++;
  }
  return Clustering(std::move(labels)).Normalized();
}

}  // namespace clustagg
