#ifndef CLUSTAGG_CATEGORICAL_TABLE_H_
#define CLUSTAGG_CATEGORICAL_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace clustagg {

/// A relational table of categorical attributes — the input of the
/// categorical-clustering application (Section 2). Values are dense
/// integer codes per attribute; `kMissingValue` marks missing entries
/// (the paper's Votes and Mushrooms datasets have 288 and 2480 of them).
/// An optional class-label column supports the classification-error
/// evaluation of Section 5.2 (it is never shown to the clustering
/// algorithms).
class CategoricalTable {
 public:
  static constexpr std::int32_t kMissingValue = -1;

  CategoricalTable() = default;

  /// Validates shape: every row has the same number of attributes, codes
  /// are >= 0 or kMissingValue, and class_labels (when provided) has one
  /// entry per row with codes >= 0.
  static Result<CategoricalTable> Create(
      std::vector<std::vector<std::int32_t>> rows,
      std::vector<std::int32_t> class_labels = {},
      std::vector<std::string> attribute_names = {},
      std::vector<std::string> class_names = {});

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_attributes() const { return num_attributes_; }

  std::int32_t value(std::size_t row, std::size_t attribute) const {
    return rows_[row][attribute];
  }
  bool has_value(std::size_t row, std::size_t attribute) const {
    return rows_[row][attribute] != kMissingValue;
  }

  /// Number of distinct codes observed in the attribute (max code + 1).
  std::size_t attribute_cardinality(std::size_t attribute) const {
    return cardinalities_[attribute];
  }

  /// Total number of missing cells.
  std::size_t CountMissing() const;

  bool has_class_labels() const { return !class_labels_.empty(); }
  const std::vector<std::int32_t>& class_labels() const {
    return class_labels_;
  }
  /// Number of distinct class labels (max label + 1); 0 without labels.
  std::size_t num_classes() const { return num_classes_; }

  const std::vector<std::string>& attribute_names() const {
    return attribute_names_;
  }
  const std::vector<std::string>& class_names() const { return class_names_; }

 private:
  std::vector<std::vector<std::int32_t>> rows_;
  std::vector<std::int32_t> class_labels_;
  std::vector<std::string> attribute_names_;
  std::vector<std::string> class_names_;
  std::vector<std::size_t> cardinalities_;
  std::size_t num_attributes_ = 0;
  std::size_t num_classes_ = 0;
};

/// Jaccard similarity of two rows over their attribute-value items
/// {(attribute, value)}: |common| / |union|, skipping missing cells.
/// Returns 0 when both rows are entirely missing. Used by ROCK and
/// available for general similarity analysis.
double JaccardSimilarity(const CategoricalTable& table, std::size_t row_a,
                         std::size_t row_b);

}  // namespace clustagg

#endif  // CLUSTAGG_CATEGORICAL_TABLE_H_
