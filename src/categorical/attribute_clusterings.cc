#include "categorical/attribute_clusterings.h"

#include <string>
#include <vector>

namespace clustagg {

Result<Clustering> AttributeClustering(const CategoricalTable& table,
                                       std::size_t attribute) {
  if (attribute >= table.num_attributes()) {
    return Status::InvalidArgument("attribute index " +
                                   std::to_string(attribute) +
                                   " out of range");
  }
  std::vector<Clustering::Label> labels(table.num_rows());
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    const std::int32_t v = table.value(r, attribute);
    labels[r] = v == CategoricalTable::kMissingValue ? Clustering::kMissing
                                                     : v;
  }
  return Clustering(std::move(labels));
}

Result<ClusteringSet> AttributeClusterings(const CategoricalTable& table) {
  std::vector<Clustering> clusterings;
  clusterings.reserve(table.num_attributes());
  for (std::size_t a = 0; a < table.num_attributes(); ++a) {
    Result<Clustering> c = AttributeClustering(table, a);
    if (!c.ok()) return c.status();
    clusterings.push_back(std::move(*c));
  }
  return ClusteringSet::Create(std::move(clusterings));
}

}  // namespace clustagg
