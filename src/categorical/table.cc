#include "categorical/table.h"

#include <algorithm>

namespace clustagg {

Result<CategoricalTable> CategoricalTable::Create(
    std::vector<std::vector<std::int32_t>> rows,
    std::vector<std::int32_t> class_labels,
    std::vector<std::string> attribute_names,
    std::vector<std::string> class_names) {
  CategoricalTable table;
  if (rows.empty()) {
    return Status::InvalidArgument("table must have at least one row");
  }
  const std::size_t m = rows.front().size();
  if (m == 0) {
    return Status::InvalidArgument("table must have at least one attribute");
  }
  std::vector<std::size_t> cardinalities(m, 0);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != m) {
      return Status::InvalidArgument(
          "row " + std::to_string(r) + " has " +
          std::to_string(rows[r].size()) + " values, expected " +
          std::to_string(m));
    }
    for (std::size_t a = 0; a < m; ++a) {
      const std::int32_t v = rows[r][a];
      if (v < 0 && v != kMissingValue) {
        return Status::InvalidArgument(
            "negative value code in row " + std::to_string(r) +
            ", attribute " + std::to_string(a));
      }
      if (v >= 0) {
        cardinalities[a] = std::max(cardinalities[a],
                                    static_cast<std::size_t>(v) + 1);
      }
    }
  }
  if (!class_labels.empty()) {
    if (class_labels.size() != rows.size()) {
      return Status::InvalidArgument(
          "class_labels has " + std::to_string(class_labels.size()) +
          " entries, expected " + std::to_string(rows.size()));
    }
    for (std::int32_t c : class_labels) {
      if (c < 0) {
        return Status::InvalidArgument("class labels must be >= 0");
      }
      table.num_classes_ = std::max(table.num_classes_,
                                    static_cast<std::size_t>(c) + 1);
    }
  }
  if (!attribute_names.empty() && attribute_names.size() != m) {
    return Status::InvalidArgument("attribute_names size mismatch");
  }
  table.rows_ = std::move(rows);
  table.class_labels_ = std::move(class_labels);
  table.attribute_names_ = std::move(attribute_names);
  table.class_names_ = std::move(class_names);
  table.cardinalities_ = std::move(cardinalities);
  table.num_attributes_ = m;
  return table;
}

std::size_t CategoricalTable::CountMissing() const {
  std::size_t count = 0;
  for (const auto& row : rows_) {
    for (std::int32_t v : row) {
      if (v == kMissingValue) ++count;
    }
  }
  return count;
}

double JaccardSimilarity(const CategoricalTable& table, std::size_t row_a,
                         std::size_t row_b) {
  std::size_t common = 0;
  std::size_t present_a = 0;
  std::size_t present_b = 0;
  for (std::size_t a = 0; a < table.num_attributes(); ++a) {
    const bool ha = table.has_value(row_a, a);
    const bool hb = table.has_value(row_b, a);
    if (ha) ++present_a;
    if (hb) ++present_b;
    if (ha && hb && table.value(row_a, a) == table.value(row_b, a)) ++common;
  }
  const std::size_t uni = present_a + present_b - common;
  if (uni == 0) return 0.0;
  return static_cast<double>(common) / static_cast<double>(uni);
}

}  // namespace clustagg
