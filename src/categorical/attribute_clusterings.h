#ifndef CLUSTAGG_CATEGORICAL_ATTRIBUTE_CLUSTERINGS_H_
#define CLUSTAGG_CATEGORICAL_ATTRIBUTE_CLUSTERINGS_H_

#include "categorical/table.h"
#include "common/status.h"
#include "core/clustering_set.h"

namespace clustagg {

/// Views each categorical attribute as a clustering of the rows — one
/// cluster per attribute value, rows with a missing value unlabeled —
/// which is exactly the paper's recipe for clustering categorical data
/// (Section 2): aggregate the m attribute-induced clusterings.
Result<ClusteringSet> AttributeClusterings(const CategoricalTable& table);

/// The single attribute-induced clustering for one attribute.
Result<Clustering> AttributeClustering(const CategoricalTable& table,
                                       std::size_t attribute);

}  // namespace clustagg

#endif  // CLUSTAGG_CATEGORICAL_ATTRIBUTE_CLUSTERINGS_H_
