#ifndef CLUSTAGG_SIGNED_SIGNED_GRAPH_H_
#define CLUSTAGG_SIGNED_SIGNED_GRAPH_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"
#include "common/symmetric_matrix.h"
#include "core/clustering.h"
#include "core/correlation_instance.h"

namespace clustagg {

/// A complete graph with +/- edge labels — the original correlation-
/// clustering formulation of Bansal, Blum, Chawla (FOCS 2002) that the
/// paper's Section 6 builds on. The objective is to minimize the number
/// of + edges cut plus the number of - edges kept inside clusters.
///
/// This is exactly the weighted formulation with X in {0, 1} (a + edge
/// is X = 0, a - edge is X = 1), so every clusterer in this library runs
/// on signed graphs through ToInstance(); the class exists to make the
/// reduction explicit and to host signed-specific utilities (majority
/// rounding of a weighted instance, agreement maximization accounting).
class SignedGraph {
 public:
  SignedGraph() = default;

  /// n vertices, all edges positive.
  explicit SignedGraph(std::size_t n)
      : negative_(n, /*fill=*/false) {}

  /// Rounds a weighted instance at the majority threshold: pairs with
  /// X_uv > 1/2 become - edges, pairs with X_uv < 1/2 become + edges;
  /// exact ties round toward + ("do not cut" is free for them either
  /// way).
  static SignedGraph FromInstance(const CorrelationInstance& instance);

  std::size_t size() const { return negative_.size(); }

  /// True iff the edge (u, v) is negative. u == v reads as positive.
  bool negative(std::size_t u, std::size_t v) const {
    return u != v && negative_(u, v);
  }
  bool positive(std::size_t u, std::size_t v) const {
    return u != v && !negative_(u, v);
  }

  void SetNegative(std::size_t u, std::size_t v, bool is_negative) {
    negative_.Set(u, v, is_negative);
  }

  /// The equivalent 0/1 weighted instance; every CorrelationClusterer in
  /// the library runs on it.
  CorrelationInstance ToInstance() const;

  /// Disagreements of a complete candidate partition: + edges cut plus
  /// - edges not cut.
  Result<std::uint64_t> Disagreements(const Clustering& candidate) const;

  /// Agreements = (n choose 2) - Disagreements — the maximization
  /// objective of the 0.76-approximation line of work (Section 6).
  Result<std::uint64_t> Agreements(const Clustering& candidate) const;

  /// Number of negative edges.
  std::uint64_t CountNegative() const;

 private:
  // negative_(u, v) == true means the edge is labeled '-'.
  SymmetricMatrix<bool> negative_;
};

}  // namespace clustagg

#endif  // CLUSTAGG_SIGNED_SIGNED_GRAPH_H_
