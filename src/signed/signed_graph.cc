#include "signed/signed_graph.h"

#include <string>

namespace clustagg {

SignedGraph SignedGraph::FromInstance(const CorrelationInstance& instance) {
  const std::size_t n = instance.size();
  SignedGraph graph(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      graph.SetNegative(u, v, instance.distance(u, v) > 0.5);
    }
  }
  return graph;
}

CorrelationInstance SignedGraph::ToInstance() const {
  const std::size_t n = size();
  SymmetricMatrix<float> distances(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      distances.Set(u, v, negative(u, v) ? 1.0f : 0.0f);
    }
  }
  Result<CorrelationInstance> instance =
      CorrelationInstance::FromDistances(std::move(distances));
  // 0/1 entries are always in range.
  return *std::move(instance);
}

Result<std::uint64_t> SignedGraph::Disagreements(
    const Clustering& candidate) const {
  const std::size_t n = size();
  if (candidate.size() != n) {
    return Status::InvalidArgument(
        "candidate covers " + std::to_string(candidate.size()) +
        " objects, expected " + std::to_string(n));
  }
  if (candidate.HasMissing()) {
    return Status::InvalidArgument("candidate must be complete");
  }
  std::uint64_t disagreements = 0;
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      const bool together = candidate.label(u) == candidate.label(v);
      if (together == negative(u, v)) ++disagreements;
    }
  }
  return disagreements;
}

Result<std::uint64_t> SignedGraph::Agreements(
    const Clustering& candidate) const {
  Result<std::uint64_t> d = Disagreements(candidate);
  if (!d.ok()) return d.status();
  const auto n = static_cast<std::uint64_t>(size());
  return n * (n - 1) / 2 - *d;
}

std::uint64_t SignedGraph::CountNegative() const {
  const std::size_t n = size();
  std::uint64_t count = 0;
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      if (negative(u, v)) ++count;
    }
  }
  return count;
}

}  // namespace clustagg
