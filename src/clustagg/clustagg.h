#ifndef CLUSTAGG_CLUSTAGG_H_
#define CLUSTAGG_CLUSTAGG_H_

/// \file
/// Umbrella header for the clustagg library — a production-quality
/// implementation of "Clustering Aggregation" (Gionis, Mannila, Tsaparas;
/// ICDE 2005): the clustering-aggregation / correlation-clustering
/// problem, the BESTCLUSTERING / BALLS / AGGLOMERATIVE / FURTHEST /
/// LOCALSEARCH algorithms, the SAMPLING meta-algorithm for large
/// datasets, vanilla clustering substrates (k-means, linkage methods),
/// categorical-data support (attribute-induced clusterings, ROCK, LIMBO),
/// synthetic data generators, and evaluation metrics.

#include "categorical/attribute_clusterings.h"
#include "categorical/limbo.h"
#include "categorical/rock.h"
#include "categorical/table.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/telemetry.h"
#include "core/aggregator.h"
#include "core/annealing.h"
#include "core/best_clustering.h"
#include "core/clusterer.h"
#include "core/clustering.h"
#include "core/clustering_set.h"
#include "core/correlation_instance.h"
#include "core/disagreement.h"
#include "core/distance_source.h"
#include "core/exact.h"
#include "core/hierarchy.h"
#include "core/lower_bound.h"
#include "core/majority.h"
#include "core/pivot.h"
#include "core/sampling.h"
#include "core/signature_index.h"
#include "data/synthetic2d.h"
#include "data/synthetic_categorical.h"
#include "ensemble/ensemble.h"
#include "eval/confidence.h"
#include "eval/metrics.h"
#include "io/clustering_io.h"
#include "io/csv.h"
#include "local/local_oracle.h"
#include "shard/decompose.h"
#include "shard/shard_aggregator.h"
#include "shard/shard_options.h"
#include "signed/signed_graph.h"
#include "stream/journal.h"
#include "stream/online_repair.h"
#include "stream/recovery.h"
#include "stream/snapshot.h"
#include "stream/stream_aggregator.h"
#include "stream/stream_event.h"
#include "vanilla/dataset2d.h"
#include "vanilla/hierarchical.h"
#include "vanilla/kmeans.h"

#endif  // CLUSTAGG_CLUSTAGG_H_
