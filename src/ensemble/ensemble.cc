#include "ensemble/ensemble.h"

#include <cmath>
#include <numbers>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "vanilla/kmeans.h"

namespace clustagg {

Result<ClusteringSet> KMeansEnsemble(const std::vector<Point2D>& points,
                                     const KMeansEnsembleOptions& options) {
  if (options.k_min < 1 || options.k_min > options.k_max) {
    return Status::InvalidArgument("need 1 <= k_min <= k_max");
  }
  if (options.runs_per_k == 0) {
    return Status::InvalidArgument("runs_per_k must be >= 1");
  }
  Rng rng(options.seed);
  std::vector<Clustering> members;
  for (std::size_t k = options.k_min; k <= options.k_max; ++k) {
    for (std::size_t run = 0; run < options.runs_per_k; ++run) {
      KMeansOptions km;
      km.k = k;
      km.max_iterations = options.max_iterations;
      km.seed = rng.NextUint64();
      Result<KMeansResult> r = KMeans(points, km);
      if (!r.ok()) return r.status();
      members.push_back(std::move(r->clustering));
    }
  }
  return ClusteringSet::Create(std::move(members));
}

Result<ClusteringSet> ProjectionEnsemble(
    const std::vector<Point2D>& points,
    const ProjectionEnsembleOptions& options) {
  if (options.members == 0) {
    return Status::InvalidArgument("members must be >= 1");
  }
  Rng rng(options.seed);
  std::vector<Clustering> members;
  for (std::size_t i = 0; i < options.members; ++i) {
    // Random direction in the plane; cluster the 1D projection.
    const double angle = rng.NextUniform(0.0, std::numbers::pi);
    const double dx = std::cos(angle);
    const double dy = std::sin(angle);
    std::vector<Point2D> projected(points.size());
    for (std::size_t p = 0; p < points.size(); ++p) {
      projected[p] = {points[p].x * dx + points[p].y * dy, 0.0};
    }
    KMeansOptions km;
    km.k = options.k;
    km.max_iterations = options.max_iterations;
    km.seed = rng.NextUint64();
    Result<KMeansResult> r = KMeans(projected, km);
    if (!r.ok()) return r.status();
    members.push_back(std::move(r->clustering));
  }
  return ClusteringSet::Create(std::move(members));
}

Result<ClusteringSet> BootstrapEnsemble(
    const std::vector<Point2D>& points,
    const BootstrapEnsembleOptions& options) {
  if (options.members == 0) {
    return Status::InvalidArgument("members must be >= 1");
  }
  if (options.sample_fraction <= 0.0 || options.sample_fraction > 1.0) {
    return Status::InvalidArgument("sample_fraction must lie in (0, 1]");
  }
  const std::size_t n = points.size();
  const auto sample_size = std::max<std::size_t>(
      options.k,
      static_cast<std::size_t>(options.sample_fraction *
                               static_cast<double>(n)));
  if (sample_size > n) {
    return Status::InvalidArgument("fewer points than clusters requested");
  }
  Rng rng(options.seed);
  std::vector<Clustering> members;
  for (std::size_t i = 0; i < options.members; ++i) {
    std::vector<std::size_t> sample =
        rng.SampleWithoutReplacement(n, sample_size);
    std::vector<Point2D> subset(sample.size());
    for (std::size_t s = 0; s < sample.size(); ++s) {
      subset[s] = points[sample[s]];
    }
    KMeansOptions km;
    km.k = options.k;
    km.max_iterations = options.max_iterations;
    km.seed = rng.NextUint64();
    Result<KMeansResult> r = KMeans(subset, km);
    if (!r.ok()) return r.status();
    std::vector<Clustering::Label> labels(n, Clustering::kMissing);
    for (std::size_t s = 0; s < sample.size(); ++s) {
      labels[sample[s]] = r->clustering.label(s);
    }
    members.emplace_back(std::move(labels));
  }
  return ClusteringSet::Create(std::move(members));
}

}  // namespace clustagg
