#ifndef CLUSTAGG_ENSEMBLE_ENSEMBLE_H_
#define CLUSTAGG_ENSEMBLE_ENSEMBLE_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"
#include "core/clustering_set.h"
#include "vanilla/dataset2d.h"

namespace clustagg {

/// Generators for *diverse* input clusterings of a point set — the raw
/// material of the paper's meta-clustering application ("improving
/// clustering robustness", Section 2) and of the ensemble methods it
/// surveys in Section 6 (Fred & Jain's multiple k-means runs, Fern &
/// Brodley's random projections).

/// Options for the k-means ensemble.
struct KMeansEnsembleOptions {
  /// k sweep (inclusive); the paper's Figures 4/5 use 2..10.
  std::size_t k_min = 2;
  std::size_t k_max = 10;
  /// Independent runs per k (Fred & Jain use many runs at a fixed k;
  /// the paper uses one run per k).
  std::size_t runs_per_k = 1;
  std::size_t max_iterations = 100;
  std::uint64_t seed = 1;
};

/// One k-means clustering per (k, run) pair; seeds differ so the runs
/// land in different local optima.
Result<ClusteringSet> KMeansEnsemble(const std::vector<Point2D>& points,
                                     const KMeansEnsembleOptions& options);

/// Options for the random-projection ensemble (Fern & Brodley, ICML
/// 2003): each member clusters a random 1D projection of the points, so
/// every member is blind to one direction of the structure and only the
/// aggregate sees all of it.
struct ProjectionEnsembleOptions {
  /// Number of random projections.
  std::size_t members = 8;
  /// k used to cluster each projection.
  std::size_t k = 8;
  std::size_t max_iterations = 50;
  std::uint64_t seed = 1;
};

/// Clusters `members` random 1D projections of the point set with
/// one-dimensional k-means each.
Result<ClusteringSet> ProjectionEnsemble(
    const std::vector<Point2D>& points,
    const ProjectionEnsembleOptions& options);

/// Options for the bootstrap (subsampling) ensemble.
struct BootstrapEnsembleOptions {
  std::size_t members = 8;
  /// Fraction of points sampled (without replacement) per member; the
  /// unsampled points get missing labels, exercising the framework's
  /// missing-value machinery.
  double sample_fraction = 0.7;
  std::size_t k = 5;
  std::size_t max_iterations = 50;
  std::uint64_t seed = 1;
};

/// Each member clusters a random subsample with k-means; points outside
/// the subsample are unlabeled (missing) in that member.
Result<ClusteringSet> BootstrapEnsemble(
    const std::vector<Point2D>& points,
    const BootstrapEnsembleOptions& options);

}  // namespace clustagg

#endif  // CLUSTAGG_ENSEMBLE_ENSEMBLE_H_
