#ifndef CLUSTAGG_IO_CSV_H_
#define CLUSTAGG_IO_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "categorical/table.h"
#include "common/status.h"

namespace clustagg {

/// Options for reading a categorical CSV file.
struct CsvOptions {
  char delimiter = ',';
  /// First row holds column names.
  bool has_header = true;
  /// Name (or, when the file has no header, 0-based index as a string)
  /// of the column holding the class label; empty = no class column.
  /// The class column is excluded from the attributes.
  std::string class_column;
  /// Cell values treated as missing.
  std::vector<std::string> missing_tokens = {"?", "", "NA", "na"};
};

/// A categorical table decoded from CSV, with the dictionaries needed to
/// map the integer codes back to the original strings.
struct CsvDataset {
  CategoricalTable table;
  std::vector<std::string> column_names;       // attribute columns only
  /// value_names[attribute][code] = original string.
  std::vector<std::vector<std::string>> value_names;
  /// class_names[class code] = original string (empty without a class
  /// column; also mirrored in table.class_names()).
  std::vector<std::string> class_names;
};

/// Parses CSV text into a categorical table: every column is a
/// categorical attribute (values are dictionary-encoded in order of
/// first appearance), except the optional class column. Quoting is not
/// supported (cells must not contain the delimiter).
Result<CsvDataset> ParseCategoricalCsv(std::string_view text,
                                       const CsvOptions& options = {});

/// Reads and parses a CSV file.
Result<CsvDataset> ReadCategoricalCsv(const std::string& path,
                                      const CsvOptions& options = {});

/// Serializes a table back to CSV (codes replaced by dictionary strings
/// when `dataset.value_names` is populated; missing cells become "?").
std::string FormatCategoricalCsv(const CsvDataset& dataset,
                                 char delimiter = ',');

}  // namespace clustagg

#endif  // CLUSTAGG_IO_CSV_H_
