#include "io/clustering_io.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

namespace clustagg {

Result<Clustering> ParseClustering(std::string_view text) {
  std::vector<Clustering::Label> labels;
  std::size_t pos = 0;
  std::size_t line = 1;
  const std::size_t n = text.size();
  while (pos < n) {
    // Skip whitespace, counting lines as they pass.
    while (pos < n && (text[pos] == ' ' || text[pos] == '\t' ||
                       text[pos] == '\r' || text[pos] == '\n')) {
      if (text[pos] == '\n') ++line;
      ++pos;
    }
    if (pos >= n) break;
    if (text[pos] == '#') {
      // Comment to end of line.
      while (pos < n && text[pos] != '\n') ++pos;
      continue;
    }
    const std::size_t start = pos;
    while (pos < n && text[pos] != ' ' && text[pos] != '\t' &&
           text[pos] != '\r' && text[pos] != '\n') {
      ++pos;
    }
    const std::string_view token = text.substr(start, pos - start);
    if (token == "?") {
      labels.push_back(Clustering::kMissing);
      continue;
    }
    // Accumulate in 64 bits so the range check is exact at the
    // boundary; the cap keeps the value far from overflowing.
    long long value = 0;
    bool valid = !token.empty();
    for (char c : token) {
      if (c < '0' || c > '9') {
        valid = false;
        break;
      }
      value = value * 10 + (c - '0');
      if (value > kMaxParsedLabel) {
        return Status::InvalidArgument(
            "line " + std::to_string(line) + ": cluster label '" +
            std::string(token) + "' is out of range (max " +
            std::to_string(kMaxParsedLabel) + ")");
      }
    }
    if (!valid) {
      return Status::InvalidArgument(
          "line " + std::to_string(line) + ": invalid label token '" +
          std::string(token) +
          "' (expected a non-negative integer or '?')");
    }
    labels.push_back(static_cast<Clustering::Label>(value));
  }
  if (labels.empty()) {
    return Status::InvalidArgument("label file contains no labels");
  }
  return Clustering(std::move(labels));
}

Result<std::vector<double>> ParseWeights(std::string_view spec) {
  std::vector<double> weights;
  std::size_t start = 0;
  std::size_t index = 1;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string token(spec.substr(start, comma - start));
    // strtod accepts "nan"/"inf" and trailing garbage; re-check both.
    char* end = nullptr;
    errno = 0;
    const double value = std::strtod(token.c_str(), &end);
    const bool consumed =
        !token.empty() && end == token.c_str() + token.size();
    if (!consumed || errno == ERANGE || !std::isfinite(value) ||
        value <= 0.0) {
      return Status::InvalidArgument(
          "weight " + std::to_string(index) + " ('" + token +
          "') is invalid: weights must be finite positive numbers");
    }
    weights.push_back(value);
    if (comma == spec.size()) break;
    start = comma + 1;
    ++index;
  }
  if (weights.empty()) {
    return Status::InvalidArgument("empty weight list");
  }
  return weights;
}

std::string FormatClustering(const Clustering& clustering) {
  std::string out;
  for (std::size_t v = 0; v < clustering.size(); ++v) {
    if (v > 0) out += ' ';
    if (clustering.has_label(v)) {
      out += std::to_string(clustering.label(v));
    } else {
      out += '?';
    }
  }
  out += '\n';
  return out;
}

Result<Clustering> ReadClusteringFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::InvalidArgument("cannot open '" + path +
                                   "': " + std::strerror(errno));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<Clustering> parsed = ParseClustering(buffer.str());
  if (!parsed.ok()) {
    return Status::InvalidArgument("while reading '" + path +
                                   "': " + parsed.status().message());
  }
  return parsed;
}

Status WriteClusteringFile(const std::string& path,
                           const Clustering& clustering) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open '" + path +
                                   "' for writing: " +
                                   std::strerror(errno));
  }
  out << FormatClustering(clustering);
  if (!out) {
    return Status::Internal("write to '" + path + "' failed");
  }
  return Status::OK();
}

Result<ClusteringSet> ReadClusteringSet(
    const std::vector<std::string>& paths) {
  if (paths.empty()) {
    return Status::InvalidArgument("no label files given");
  }
  std::vector<Clustering> clusterings;
  clusterings.reserve(paths.size());
  for (const std::string& path : paths) {
    Result<Clustering> c = ReadClusteringFile(path);
    if (!c.ok()) return c.status();
    clusterings.push_back(std::move(*c));
  }
  return ClusteringSet::Create(std::move(clusterings));
}

}  // namespace clustagg
