#include "io/clustering_io.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

namespace clustagg {

Result<Clustering> ParseClustering(std::string_view text) {
  std::vector<Clustering::Label> labels;
  std::size_t pos = 0;
  const std::size_t n = text.size();
  while (pos < n) {
    // Skip whitespace.
    while (pos < n && (text[pos] == ' ' || text[pos] == '\t' ||
                       text[pos] == '\r' || text[pos] == '\n')) {
      ++pos;
    }
    if (pos >= n) break;
    if (text[pos] == '#') {
      // Comment to end of line.
      while (pos < n && text[pos] != '\n') ++pos;
      continue;
    }
    const std::size_t start = pos;
    while (pos < n && text[pos] != ' ' && text[pos] != '\t' &&
           text[pos] != '\r' && text[pos] != '\n') {
      ++pos;
    }
    const std::string_view token = text.substr(start, pos - start);
    if (token == "?") {
      labels.push_back(Clustering::kMissing);
      continue;
    }
    Clustering::Label value = 0;
    bool valid = !token.empty();
    for (char c : token) {
      if (c < '0' || c > '9') {
        valid = false;
        break;
      }
      if (value > (std::numeric_limits<Clustering::Label>::max() - 9) / 10) {
        return Status::InvalidArgument("cluster label overflows: " +
                                       std::string(token));
      }
      value = value * 10 + (c - '0');
    }
    if (!valid) {
      return Status::InvalidArgument(
          "invalid label token '" + std::string(token) +
          "' at offset " + std::to_string(start) +
          " (expected a non-negative integer or '?')");
    }
    labels.push_back(value);
  }
  if (labels.empty()) {
    return Status::InvalidArgument("label file contains no labels");
  }
  return Clustering(std::move(labels));
}

std::string FormatClustering(const Clustering& clustering) {
  std::string out;
  for (std::size_t v = 0; v < clustering.size(); ++v) {
    if (v > 0) out += ' ';
    if (clustering.has_label(v)) {
      out += std::to_string(clustering.label(v));
    } else {
      out += '?';
    }
  }
  out += '\n';
  return out;
}

Result<Clustering> ReadClusteringFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::InvalidArgument("cannot open '" + path +
                                   "': " + std::strerror(errno));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<Clustering> parsed = ParseClustering(buffer.str());
  if (!parsed.ok()) {
    return Status::InvalidArgument("while reading '" + path +
                                   "': " + parsed.status().message());
  }
  return parsed;
}

Status WriteClusteringFile(const std::string& path,
                           const Clustering& clustering) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open '" + path +
                                   "' for writing: " +
                                   std::strerror(errno));
  }
  out << FormatClustering(clustering);
  if (!out) {
    return Status::Internal("write to '" + path + "' failed");
  }
  return Status::OK();
}

Result<ClusteringSet> ReadClusteringSet(
    const std::vector<std::string>& paths) {
  if (paths.empty()) {
    return Status::InvalidArgument("no label files given");
  }
  std::vector<Clustering> clusterings;
  clusterings.reserve(paths.size());
  for (const std::string& path : paths) {
    Result<Clustering> c = ReadClusteringFile(path);
    if (!c.ok()) return c.status();
    clusterings.push_back(std::move(*c));
  }
  return ClusteringSet::Create(std::move(clusterings));
}

}  // namespace clustagg
