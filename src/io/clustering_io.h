#ifndef CLUSTAGG_IO_CLUSTERING_IO_H_
#define CLUSTAGG_IO_CLUSTERING_IO_H_

#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/clustering.h"
#include "core/clustering_set.h"

namespace clustagg {

/// Text format for clusterings (the "label file"): one token per object,
/// separated by whitespace or newlines — a non-negative integer cluster
/// id, or `?` for a missing label. Lines starting with `#` are comments.
///
/// Example (the paper's C_1 of Figure 1):
///   # clustering C1
///   0 0 1 1 2 2

/// Parses a label file's contents. Malformed input — a non-numeric
/// token, a label that overflows, or a label above kMaxParsedLabel —
/// yields InvalidArgument naming the offending 1-based line.
Result<Clustering> ParseClustering(std::string_view text);

/// Largest cluster id ParseClustering accepts. Labels are arbitrary
/// (sparse ids are fine), but ids this large serve no purpose and ids
/// near the Label type's maximum would overflow downstream relabeling
/// arithmetic (e.g. WithMissingAsSingletons computes max_label + 1 +
/// #missing), so the parser treats them as corrupt input.
inline constexpr Clustering::Label kMaxParsedLabel =
    std::numeric_limits<Clustering::Label>::max() / 2;

/// Parses a comma-separated weight list (the CLI's --weights spec).
/// Every token must be a finite, strictly positive number; anything
/// else — NaN, inf, zero, negatives, non-numeric text, empty tokens —
/// is InvalidArgument naming the offending 1-based position.
Result<std::vector<double>> ParseWeights(std::string_view spec);

/// Serializes a clustering in the label-file format (one line, plus a
/// trailing newline). Missing labels become `?`.
std::string FormatClustering(const Clustering& clustering);

/// Reads a clustering from a file.
Result<Clustering> ReadClusteringFile(const std::string& path);

/// Writes a clustering to a file (overwrites).
Status WriteClusteringFile(const std::string& path,
                           const Clustering& clustering);

/// Reads several label files into a ClusteringSet (all files must cover
/// the same number of objects).
Result<ClusteringSet> ReadClusteringSet(
    const std::vector<std::string>& paths);

}  // namespace clustagg

#endif  // CLUSTAGG_IO_CLUSTERING_IO_H_
