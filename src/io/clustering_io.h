#ifndef CLUSTAGG_IO_CLUSTERING_IO_H_
#define CLUSTAGG_IO_CLUSTERING_IO_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "core/clustering.h"
#include "core/clustering_set.h"

namespace clustagg {

/// Text format for clusterings (the "label file"): one token per object,
/// separated by whitespace or newlines — a non-negative integer cluster
/// id, or `?` for a missing label. Lines starting with `#` are comments.
///
/// Example (the paper's C_1 of Figure 1):
///   # clustering C1
///   0 0 1 1 2 2

/// Parses a label file's contents.
Result<Clustering> ParseClustering(std::string_view text);

/// Serializes a clustering in the label-file format (one line, plus a
/// trailing newline). Missing labels become `?`.
std::string FormatClustering(const Clustering& clustering);

/// Reads a clustering from a file.
Result<Clustering> ReadClusteringFile(const std::string& path);

/// Writes a clustering to a file (overwrites).
Status WriteClusteringFile(const std::string& path,
                           const Clustering& clustering);

/// Reads several label files into a ClusteringSet (all files must cover
/// the same number of objects).
Result<ClusteringSet> ReadClusteringSet(
    const std::vector<std::string>& paths);

}  // namespace clustagg

#endif  // CLUSTAGG_IO_CLUSTERING_IO_H_
