#include "io/csv.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_map>

namespace clustagg {

namespace {

/// Splits one CSV line on the delimiter; trims trailing '\r'.
std::vector<std::string> SplitLine(std::string_view line, char delimiter) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  std::vector<std::string> cells;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == delimiter) {
      cells.emplace_back(line.substr(start, i - start));
      start = i + 1;
    }
  }
  return cells;
}

bool IsMissing(const std::string& cell, const CsvOptions& options) {
  return std::find(options.missing_tokens.begin(),
                   options.missing_tokens.end(),
                   cell) != options.missing_tokens.end();
}

}  // namespace

Result<CsvDataset> ParseCategoricalCsv(std::string_view text,
                                       const CsvOptions& options) {
  // Split into lines, dropping blank ones.
  std::vector<std::string_view> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '\n') {
      std::string_view line = text.substr(start, i - start);
      if (!line.empty() && line != "\r") lines.push_back(line);
      start = i + 1;
    }
  }
  if (lines.empty()) {
    return Status::InvalidArgument("CSV input is empty");
  }

  std::vector<std::string> header;
  std::size_t first_data_line = 0;
  if (options.has_header) {
    header = SplitLine(lines[0], options.delimiter);
    first_data_line = 1;
  } else {
    // Synthesize positional names.
    const std::size_t width =
        SplitLine(lines[0], options.delimiter).size();
    for (std::size_t c = 0; c < width; ++c) {
      header.push_back(std::to_string(c));
    }
  }
  const std::size_t width = header.size();

  // Locate the class column.
  std::size_t class_index = width;  // sentinel: none
  if (!options.class_column.empty()) {
    for (std::size_t c = 0; c < width; ++c) {
      if (header[c] == options.class_column) {
        class_index = c;
        break;
      }
    }
    if (class_index == width) {
      return Status::InvalidArgument("class column '" +
                                     options.class_column +
                                     "' not found in header");
    }
  }

  CsvDataset dataset;
  std::vector<std::unordered_map<std::string, std::int32_t>> dictionaries(
      width);
  dataset.value_names.assign(width - (class_index < width ? 1 : 0), {});
  std::unordered_map<std::string, std::int32_t> class_dictionary;

  for (std::size_t c = 0; c < width; ++c) {
    if (c != class_index) dataset.column_names.push_back(header[c]);
  }

  std::vector<std::vector<std::int32_t>> rows;
  std::vector<std::int32_t> class_labels;
  for (std::size_t l = first_data_line; l < lines.size(); ++l) {
    const std::vector<std::string> cells =
        SplitLine(lines[l], options.delimiter);
    if (cells.size() != width) {
      return Status::InvalidArgument(
          "row " + std::to_string(l + 1) + " has " +
          std::to_string(cells.size()) + " cells, expected " +
          std::to_string(width));
    }
    std::vector<std::int32_t> row;
    row.reserve(width);
    std::size_t attribute = 0;
    for (std::size_t c = 0; c < width; ++c) {
      if (c == class_index) {
        if (IsMissing(cells[c], options)) {
          return Status::InvalidArgument("row " + std::to_string(l + 1) +
                                         " has a missing class label");
        }
        auto [it, inserted] = class_dictionary.try_emplace(
            cells[c],
            static_cast<std::int32_t>(class_dictionary.size()));
        if (inserted) dataset.class_names.push_back(cells[c]);
        class_labels.push_back(it->second);
        continue;
      }
      if (IsMissing(cells[c], options)) {
        row.push_back(CategoricalTable::kMissingValue);
      } else {
        auto [it, inserted] = dictionaries[c].try_emplace(
            cells[c], static_cast<std::int32_t>(dictionaries[c].size()));
        if (inserted) dataset.value_names[attribute].push_back(cells[c]);
        row.push_back(it->second);
      }
      ++attribute;
    }
    rows.push_back(std::move(row));
  }

  Result<CategoricalTable> table = CategoricalTable::Create(
      std::move(rows), std::move(class_labels), dataset.column_names,
      dataset.class_names);
  if (!table.ok()) return table.status();
  dataset.table = std::move(*table);
  return dataset;
}

Result<CsvDataset> ReadCategoricalCsv(const std::string& path,
                                      const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::InvalidArgument("cannot open '" + path +
                                   "': " + std::strerror(errno));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<CsvDataset> parsed = ParseCategoricalCsv(buffer.str(), options);
  if (!parsed.ok()) {
    return Status::InvalidArgument("while reading '" + path +
                                   "': " + parsed.status().message());
  }
  return parsed;
}

std::string FormatCategoricalCsv(const CsvDataset& dataset,
                                 char delimiter) {
  const CategoricalTable& table = dataset.table;
  std::string out;
  const bool has_class = table.has_class_labels();
  for (std::size_t c = 0; c < dataset.column_names.size(); ++c) {
    if (c > 0) out += delimiter;
    out += dataset.column_names[c];
  }
  if (has_class) {
    out += delimiter;
    out += "class";
  }
  out += '\n';
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    for (std::size_t a = 0; a < table.num_attributes(); ++a) {
      if (a > 0) out += delimiter;
      if (!table.has_value(r, a)) {
        out += '?';
      } else {
        const auto code = static_cast<std::size_t>(table.value(r, a));
        if (a < dataset.value_names.size() &&
            code < dataset.value_names[a].size()) {
          out += dataset.value_names[a][code];
        } else {
          out += std::to_string(code);
        }
      }
    }
    if (has_class) {
      out += delimiter;
      const auto code =
          static_cast<std::size_t>(table.class_labels()[r]);
      if (code < dataset.class_names.size()) {
        out += dataset.class_names[code];
      } else {
        out += std::to_string(code);
      }
    }
    out += '\n';
  }
  return out;
}

}  // namespace clustagg
