#!/usr/bin/env bash
# Sanitizer matrix leg for the streaming subsystem: builds the repo twice
# (CLUSTAGG_SANITIZE=address, =thread) and runs only the stream-labeled
# suites — the unit suite, the differential oracle harness, and the CLI
# replay smoke — so the new code stays cheap to gate on. The full suite
# still runs sanitized in the heavyweight job; this leg is the fast one
# wired to every push.
#
# Usage: ci/sanitize_stream.sh [jobs]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="${1:-$(nproc)}"

for SAN in address thread; do
  BUILD="$ROOT/build-sanitize-$SAN"
  echo "=== CLUSTAGG_SANITIZE=$SAN ==="
  cmake -B "$BUILD" -S "$ROOT" -DCLUSTAGG_SANITIZE="$SAN" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build "$BUILD" -j"$JOBS" \
        --target stream_test stream_differential_test clustagg_cli
  # `stream|differential` (ctest -L matches a regex) covers the unit
  # suite, the oracle harness, and the CLI replay smoke; the second
  # pass pins the differential label on its own so a labeling
  # regression cannot silently empty the leg. --no-tests=error keeps an
  # empty label set from passing vacuously.
  (cd "$BUILD" && ctest -L 'stream|differential' --no-tests=error \
       --output-on-failure -j"$JOBS")
  (cd "$BUILD" && ctest -L differential --no-tests=error \
       --output-on-failure -j"$JOBS")
done
echo "sanitize_stream: all legs passed"
