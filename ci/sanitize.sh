#!/usr/bin/env bash
# Unified sanitizer matrix leg: builds the repo twice
# (CLUSTAGG_SANITIZE=address, =thread) and runs one `ctest -L` pass per
# label argument. `-L` matches a regex, so a single argument can cover
# several labels at once, and listing a label again on its own pins it
# against silently falling out of a combined pass. --no-tests=error
# keeps a labeling regression from passing a leg vacuously.
#
# The per-subsystem fast gates wired to every push:
#   ci/sanitize.sh 'stream|differential' differential   # streaming
#   ci/sanitize.sh shard                                # shard pipeline
#   ci/sanitize.sh durability                           # crash safety
#   ci/sanitize.sh native                               # packed kernel
#   ci/sanitize.sh local                                # membership oracle
#
# `native` is a special leg, not a label regex: it builds once with
# CLUSTAGG_NATIVE=ON (compiling the AVX2 packed-label kernel) under
# ASan and runs the backend-equivalence and property suites plus the
# tier-forcing CLI smoke — every dispatch tier (portable, swar, and
# avx2 where the CPU has it) answers under sanitizer instrumentation,
# and the bit-identity checks diff their costs against each other.
#
# The local leg runs the membership-oracle suites (labels `local` and
# `differential`): many threads share one oracle and race its LRU memo,
# so the TSan pass is what certifies the concurrent-query contract of
# docs/local_queries.md.
#
# The shard leg is the library's widest parallel surface (worker threads
# run whole Aggregate pipelines concurrently), so its TSan pass in
# particular must stay clean. The durability leg replays the kill-point
# crash matrix under both sanitizers: recovery code paths are exactly
# the ones that only run after something already went wrong, so they
# get the least organic coverage. The full suite still runs sanitized
# in the heavyweight job; these legs are the fast ones.
#
# On top of the label legs, every invocation runs a fixed eviction pin
# (`ctest -R 'Window|Evict|Removal|window_smoke'`): the
# windowed-forgetting surface — FIFO eviction, removal decrements,
# recovery of journals that carry removals — touches the counter
# triangle with both adds and decrements, so it must stay clean under
# ASan and TSan no matter how a label regex above is narrowed.
#
# Usage: ci/sanitize.sh [-j jobs] LABEL_REGEX [LABEL_REGEX...]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc)"

while getopts 'j:' opt; do
  case "$opt" in
    j) JOBS="$OPTARG" ;;
    *) echo "usage: ci/sanitize.sh [-j jobs] LABEL_REGEX..." >&2; exit 2 ;;
  esac
done
shift $((OPTIND - 1))

if [ "$#" -eq 0 ]; then
  echo "usage: ci/sanitize.sh [-j jobs] LABEL_REGEX..." >&2
  exit 2
fi

if [ "$1" = "native" ]; then
  # AVX2 packed-kernel leg: one ASan build with the native kernel
  # compiled in, running the backend-equivalence + property suites and
  # the CLUSTAGG_KERNEL tier-forcing smoke. Forcing each tier through
  # the environment exercises the runtime dispatch itself; the suites'
  # EXPECT_EQ bit-identity checks are the cost diff.
  BUILD="$ROOT/build-sanitize-native"
  echo "=== CLUSTAGG_SANITIZE=address CLUSTAGG_NATIVE=ON ==="
  cmake -B "$BUILD" -S "$ROOT" -DCLUSTAGG_SANITIZE=address \
        -DCLUSTAGG_NATIVE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build "$BUILD" -j"$JOBS"
  for TIER in portable swar avx2; do
    echo "--- CLUSTAGG_KERNEL=$TIER ---"
    (cd "$BUILD" && CLUSTAGG_KERNEL="$TIER" \
         ctest -L 'backend|property' --no-tests=error \
         --output-on-failure -j"$JOBS")
  done
  echo "sanitize: native leg passed"
  exit 0
fi

for SAN in address thread; do
  BUILD="$ROOT/build-sanitize-$SAN"
  echo "=== CLUSTAGG_SANITIZE=$SAN ==="
  cmake -B "$BUILD" -S "$ROOT" -DCLUSTAGG_SANITIZE="$SAN" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build "$BUILD" -j"$JOBS"
  for LABEL in "$@"; do
    (cd "$BUILD" && ctest -L "$LABEL" --no-tests=error \
         --output-on-failure -j"$JOBS")
  done
  (cd "$BUILD" && ctest -R 'Window|Evict|Removal|window_smoke' --no-tests=error \
       --output-on-failure -j"$JOBS")
done
echo "sanitize: all legs passed"
