#!/usr/bin/env bash
# Sanitizer matrix leg for the shard-and-conquer pipeline: builds the
# repo twice (CLUSTAGG_SANITIZE=address, =thread) and runs only the
# shard-labeled suite. The per-shard parallel solve is the library's
# widest parallel surface — worker threads run whole Aggregate pipelines
# concurrently against per-thread UnionFind forests and a shared result
# array — so the TSan leg in particular must stay clean on every push.
# The full suite still runs sanitized in the heavyweight job; this leg
# is the fast one wired to every push.
#
# Usage: ci/sanitize_shard.sh [jobs]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="${1:-$(nproc)}"

for SAN in address thread; do
  BUILD="$ROOT/build-sanitize-$SAN"
  echo "=== CLUSTAGG_SANITIZE=$SAN ==="
  cmake -B "$BUILD" -S "$ROOT" -DCLUSTAGG_SANITIZE="$SAN" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build "$BUILD" -j"$JOBS" --target shard_test
  # --no-tests=error keeps a labeling regression from passing the leg
  # vacuously.
  (cd "$BUILD" && ctest -L shard --no-tests=error \
       --output-on-failure -j"$JOBS")
done
echo "sanitize_shard: all legs passed"
